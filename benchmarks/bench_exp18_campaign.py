"""C1 — campaign orchestration: the paper sweep as a resumable batch run.

Drives the bundled ``paper-sweep-smoke`` spec end to end through the
campaign subsystem (spec -> DAG -> scheduler -> content-addressed store)
and asserts its two contracts:

* the deterministic-vs-statistical report lands with the paper's shape
  (statistical saves extra leakage at the shared Tmax on every row);
* an immediate rerun is 100% cache hits — the orchestration layer adds
  memoization, not re-computation.

Each run executes under a :func:`repro.telemetry_session`, and the
per-task-kind timing breakdown comes from the scheduler's
``campaign_task_seconds`` histogram (absorbed from the worker bundles
in DAG order) rather than ad-hoc timers; the cache behaviour is
cross-checked against the ``campaign_cache_hits/misses_total`` counters.

The run record lands as ``results/exp18_campaign.txt`` (the report table
plus the timing breakdown) and ``results/exp18_campaign.json`` (run
summaries, cache-hit rate, per-kind seconds).
"""

from __future__ import annotations

from _harness import bench_jobs, report, report_json, run_once

from repro.analysis import format_table
from repro.campaign import ArtifactStore, CampaignRunner, resolve_spec
from repro.telemetry import telemetry_session

STORE_SUBDIR = "results/exp18_store"
SPEC_NAME = "paper-sweep-smoke"


def _kind_breakdown(snap):
    """Per-task-kind (kind, count, total_s) rows from the registry."""
    rows = []
    for sample in snap.with_name("campaign_task_seconds"):
        labels = dict(sample.labels)
        rows.append((labels.get("kind", "?"), sample.count, sample.value))
    rows.sort(key=lambda row: -row[2])
    return rows


def run_experiment():
    from pathlib import Path

    store_root = Path(__file__).resolve().parent / STORE_SUBDIR
    spec = resolve_spec(SPEC_NAME).with_overrides(mc_samples=200)
    store = ArtifactStore(store_root)
    with telemetry_session() as tele:
        first = CampaignRunner(spec, store, n_jobs=bench_jobs(), force=True).run()
        first_snap = tele.snapshot()
    with telemetry_session() as tele:
        second = CampaignRunner(spec, store, n_jobs=bench_jobs()).run()
        second_snap = tele.snapshot()
    table = str(store.get(first.report_key)["table"])
    rows = store.get(first.report_key)["rows"]
    return {
        "first": first, "second": second, "table": table, "rows": rows,
        "first_snap": first_snap, "second_snap": second_snap,
    }


def bench_exp18_campaign(benchmark):
    out = run_once(benchmark, run_experiment)
    first, second = out["first"], out["second"]
    first_snap, second_snap = out["first_snap"], out["second_snap"]

    breakdown = _kind_breakdown(first_snap)
    timing_table = format_table(
        ["task kind", "tasks", "total [s]", "mean [s]"],
        [[kind, count, f"{total:.2f}", f"{total / count:.2f}"]
         for kind, count, total in breakdown],
        title="first-run timing by task kind (campaign_task_seconds)",
    )
    report("exp18_campaign", out["table"] + "\n\n" + timing_table)
    report_json("exp18_campaign", {
        "spec": SPEC_NAME,
        "first_run": first.summary(),
        "second_run": second.summary(),
        "timing_source": "telemetry:campaign_task_seconds",
        "first_run_seconds_by_kind": {
            kind: {"tasks": count, "seconds": total}
            for kind, count, total in breakdown
        },
    })

    # Both runs settle clean; the sweep covers every benchmark in the spec.
    assert first.ok and second.ok
    assert first.executed == first.total
    assert len(out["rows"]) == len(resolve_spec(SPEC_NAME).benchmarks)

    # The paper's claim on every row: extra savings at the shared Tmax.
    for row in out["rows"]:
        assert row["extra_savings"] > 0, row["circuit"]

    # Rerun = pure cache: nothing executed, every task served by the store.
    assert second.executed == 0
    assert second.cached == second.total
    assert second.cache_hit_rate == 1.0

    # The registry tells the same story: every task timed on the first
    # run, every task a cache hit (and none timed) on the second.
    assert sum(count for _, count, _ in breakdown) == first.total
    assert int(first_snap.value("campaign_cache_misses_total")) == first.total
    assert int(second_snap.value("campaign_cache_hits_total")) == second.total
    assert second_snap.count("campaign_task_seconds", kind="report") == 0
