"""C1 — campaign orchestration: the paper sweep as a resumable batch run.

Drives the bundled ``paper-sweep-smoke`` spec end to end through the
campaign subsystem (spec -> DAG -> scheduler -> content-addressed store)
and asserts its two contracts:

* the deterministic-vs-statistical report lands with the paper's shape
  (statistical saves extra leakage at the shared Tmax on every row);
* an immediate rerun is 100% cache hits — the orchestration layer adds
  memoization, not re-computation.

The run record lands as ``results/exp18_campaign.txt`` (the report table)
plus ``results/exp18_campaign.json`` (run summaries and cache-hit rate).
"""

from __future__ import annotations

from _harness import bench_jobs, report, report_json, run_once

from repro.campaign import ArtifactStore, CampaignRunner, resolve_spec

STORE_SUBDIR = "results/exp18_store"
SPEC_NAME = "paper-sweep-smoke"


def run_experiment():
    from pathlib import Path

    store_root = Path(__file__).resolve().parent / STORE_SUBDIR
    spec = resolve_spec(SPEC_NAME).with_overrides(mc_samples=200)
    store = ArtifactStore(store_root)
    first = CampaignRunner(spec, store, n_jobs=bench_jobs(), force=True).run()
    second = CampaignRunner(spec, store, n_jobs=bench_jobs()).run()
    table = str(store.get(first.report_key)["table"])
    rows = store.get(first.report_key)["rows"]
    return {"first": first, "second": second, "table": table, "rows": rows}


def bench_exp18_campaign(benchmark):
    out = run_once(benchmark, run_experiment)
    first, second = out["first"], out["second"]

    report("exp18_campaign", out["table"])
    report_json("exp18_campaign", {
        "spec": SPEC_NAME,
        "first_run": first.summary(),
        "second_run": second.summary(),
    })

    # Both runs settle clean; the sweep covers every benchmark in the spec.
    assert first.ok and second.ok
    assert first.executed == first.total
    assert len(out["rows"]) == len(resolve_spec(SPEC_NAME).benchmarks)

    # The paper's claim on every row: extra savings at the shared Tmax.
    for row in out["rows"]:
        assert row["extra_savings"] > 0, row["circuit"]

    # Rerun = pure cache: nothing executed, every task served by the store.
    assert second.executed == 0
    assert second.cached == second.total
    assert second.cache_hit_rate == 1.0
