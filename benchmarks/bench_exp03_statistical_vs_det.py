"""T3 — the headline table: statistical vs deterministic optimization.

For every suite circuit, both flows run at the identical constraint
(Tmax = 1.1x corner Dmin).  The deterministic flow signs off at the 3-sigma
corner; the statistical flow constrains P(delay <= Tmax) >= 95% and
minimizes the mean+1.645sigma leakage point.  The paper's claim, in shape:
the statistical flow achieves substantially lower mean and 95th-percentile
leakage at its (tight, not over-delivered) yield target.
"""

from __future__ import annotations

import numpy as np
from _harness import report, run_once

from repro.analysis import format_table, microwatts, percent
from repro.analysis.experiments import prepare, run_comparison
from repro.circuit import FULL_SUITE
from repro.core import OptimizerConfig


def run_experiment():
    config = OptimizerConfig()
    return [run_comparison(prepare(name), config=config) for name in FULL_SUITE]


def bench_exp03_statistical_vs_det(benchmark):
    comparisons = run_once(benchmark, run_experiment)
    table = format_table(
        ["circuit", "gates", "det mean [uW]", "stat mean [uW]", "extra",
         "det p95 [uW]", "stat p95 [uW]", "det yield", "stat yield"],
        [
            [c.circuit, c.n_gates,
             microwatts(c.deterministic.after.mean_leakage),
             microwatts(c.statistical.after.mean_leakage),
             percent(c.extra_mean_savings),
             microwatts(c.deterministic.after.p95_leakage),
             microwatts(c.statistical.after.p95_leakage),
             f"{c.deterministic.after.timing_yield:.4f}",
             f"{c.statistical.after.timing_yield:.4f}"]
            for c in comparisons
        ],
        title=(
            "T3: statistical vs deterministic optimization at equal Tmax "
            "(eta = 0.95)"
        ),
    )
    extra = np.array([c.extra_mean_savings for c in comparisons])
    summary = (
        f"extra mean-leakage savings: min {extra.min():.1%}, "
        f"mean {extra.mean():.1%}, max {extra.max():.1%}"
    )
    report("exp03_statistical_vs_det", table + "\n" + summary)

    for c in comparisons:
        stat, det = c.statistical, c.deterministic
        # The headline: statistical wins on every reported statistic.
        assert stat.after.mean_leakage < det.after.mean_leakage
        assert stat.after.p95_leakage < det.after.p95_leakage
        # Yield constraint met but not grossly over-delivered; the
        # deterministic corner flow over-delivers by construction.
        assert stat.after.timing_yield >= 0.95 - 1e-6
        assert det.after.timing_yield > stat.after.timing_yield - 1e-6
    # Paper-shaped magnitude: double-digit average extra savings.
    assert extra.mean() > 0.10
