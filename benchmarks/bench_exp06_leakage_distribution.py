"""F1 — full-chip leakage distribution (analytic vs Monte Carlo).

Regenerates the paper's motivating figure: the leakage histogram of one
circuit before and after statistical optimization, with the analytic
(Wilkinson-matched lognormal) moments overlaid on 5000-die Monte Carlo.
The printed series is the histogram the figure plots.
"""

from __future__ import annotations

import numpy as np
from _harness import bench_jobs, report, run_once

from repro.analysis import format_table, microwatts
from repro.analysis.experiments import prepare
from repro.core import OptimizerConfig, optimize_statistical
from repro.power import analyze_statistical_leakage, run_monte_carlo_leakage

CIRCUIT = "c499"
SAMPLES = 5000


def run_experiment():
    setup = prepare(CIRCUIT)
    out = {}
    for phase in ("before", "after"):
        if phase == "after":
            optimize_statistical(
                setup.circuit, setup.spec, setup.varmodel,
                config=OptimizerConfig(),
            )
        analytic = analyze_statistical_leakage(setup.circuit, setup.varmodel)
        mc = run_monte_carlo_leakage(
            setup.circuit, setup.varmodel, n_samples=SAMPLES, seed=11,
            n_jobs=bench_jobs(),
        )
        counts, edges = np.histogram(mc.powers, bins=16)
        out[phase] = {
            "analytic_mean": analytic.mean_power,
            "analytic_p95": analytic.percentile_power(0.95),
            "mc_mean": mc.mean_power,
            "mc_p95": mc.percentile_power(0.95),
            "hist_counts": counts,
            "hist_edges": edges,
        }
    return out


def bench_exp06_leakage_distribution(benchmark):
    out = run_once(benchmark, run_experiment)
    lines = []
    for phase, d in out.items():
        lines.append(
            format_table(
                ["quantity", "analytic [uW]", "monte-carlo [uW]"],
                [
                    ["mean", microwatts(d["analytic_mean"]), microwatts(d["mc_mean"])],
                    ["95th pct", microwatts(d["analytic_p95"]), microwatts(d["mc_p95"])],
                ],
                title=f"F1 ({phase} optimization): {CIRCUIT}, {SAMPLES} dies",
            )
        )
        hist = "  ".join(str(int(c)) for c in d["hist_counts"])
        lines.append(f"histogram counts ({phase}): {hist}")
    report("exp06_leakage_distribution", "\n\n".join(lines))

    for phase, d in out.items():
        # Analytic-vs-MC agreement: mean within 3%, p95 within 6%.
        assert abs(d["analytic_mean"] / d["mc_mean"] - 1) < 0.03, phase
        assert abs(d["analytic_p95"] / d["mc_p95"] - 1) < 0.06, phase
        # Right-skew: the p95/mean ratio marks the lognormal tail.
        assert d["mc_p95"] > 1.2 * d["mc_mean"], phase
    # Optimization shifts the whole distribution down by a large factor.
    assert out["after"]["mc_mean"] < 0.5 * out["before"]["mc_mean"]
