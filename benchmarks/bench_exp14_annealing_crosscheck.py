"""A3 (extension) — simulated-annealing cross-check of the greedy flow.

Is the phased greedy engine leaving big savings on the table?  The
annealer is warm-started *from the greedy solution* with the identical
objective and constraint and given thousands of proposals to escape it
(cold-start annealing cannot converge on these state-space sizes in
comparable time, as a run on c432 readily shows).  Expected shape: the
best feasible state the annealer finds improves on greedy by only a few
percent — i.e. the greedy solutions are near-locally-optimal.
"""

from __future__ import annotations

from _harness import report, run_once

from repro.analysis import format_table, microwatts
from repro.analysis.experiments import prepare
from repro.core import (
    AnnealConfig,
    OptimizerConfig,
    optimize_annealing,
    optimize_statistical,
)

CIRCUITS = ("c17", "c432")
STEPS = {"c17": 2000, "c432": 4000}


def run_experiment():
    config = OptimizerConfig()
    rows = []
    for name in CIRCUITS:
        setup_g = prepare(name)
        greedy = optimize_statistical(
            setup_g.circuit, setup_g.spec, setup_g.varmodel, config=config
        )
        setup_a = prepare(name)
        annealed = optimize_annealing(
            setup_a.circuit, setup_a.spec, setup_a.varmodel,
            target_delay=greedy.target_delay,
            config=config,
            anneal=AnnealConfig(steps=STEPS[name], t_start=0.02, seed=13),
            initial=greedy.final_assignment,
        )
        rows.append({"circuit": name, "greedy": greedy, "annealed": annealed})
    return rows


def bench_exp14_annealing_crosscheck(benchmark):
    rows = run_once(benchmark, run_experiment)
    table = format_table(
        ["circuit", "greedy hc [uW]", "anneal hc [uW]", "ratio",
         "greedy yield", "anneal yield", "greedy [s]", "anneal [s]"],
        [
            [r["circuit"],
             microwatts(r["greedy"].after.hc_leakage),
             microwatts(r["annealed"].after.hc_leakage),
             f"{r['annealed'].after.hc_leakage / r['greedy'].after.hc_leakage:.3f}",
             f"{r['greedy'].after.timing_yield:.4f}",
             f"{r['annealed'].after.timing_yield:.4f}",
             f"{r['greedy'].runtime_seconds:.1f}",
             f"{r['annealed'].runtime_seconds:.1f}"]
            for r in rows
        ],
        title="A3: greedy vs simulated-annealing cross-check (same objective)",
    )
    report("exp14_annealing_crosscheck", table)

    for r in rows:
        ratio = r["annealed"].after.hc_leakage / r["greedy"].after.hc_leakage
        # Warm-started annealing keeps the incumbent, so it can only
        # improve — and if greedy were badly myopic it would improve a lot.
        assert ratio <= 1.0 + 1e-9, r["circuit"]
        assert ratio > 0.7, r["circuit"]
        assert r["annealed"].after.timing_yield >= 0.95 - 1e-6
        assert r["greedy"].after.timing_yield >= 0.95 - 1e-6
        # Greedy earns its keep on speed.
        assert r["greedy"].runtime_seconds < r["annealed"].runtime_seconds
