"""T2 — deterministic dual-Vth + sizing baseline table.

Unoptimized vs deterministically-optimized leakage at Tmax = 1.1x corner
Dmin: the classical flow's result the statistical one is measured against.
Reports nominal leakage (the quantity the deterministic flow believes it
optimizes) next to the statistical mean (what a real population of dies
draws), plus the measured timing yield of the corner-signed solution.
"""

from __future__ import annotations

from _harness import report, run_once

from repro.analysis import format_table, microwatts, percent
from repro.analysis.experiments import prepare
from repro.circuit import FULL_SUITE
from repro.core import OptimizerConfig, optimize_deterministic


def run_experiment():
    config = OptimizerConfig()
    rows = []
    for name in FULL_SUITE:
        setup = prepare(name)
        result = optimize_deterministic(
            setup.circuit, setup.spec, setup.varmodel, config=config
        )
        rows.append({"circuit": name, "gates": setup.circuit.n_gates,
                     "result": result})
    return rows


def bench_exp02_deterministic(benchmark):
    rows = run_once(benchmark, run_experiment)
    table = format_table(
        ["circuit", "gates", "unopt nom [uW]", "det nom [uW]", "savings",
         "det mean [uW]", "yield", "high-Vth", "runtime [s]"],
        [
            [r["circuit"], r["gates"],
             microwatts(r["result"].before.nominal_leakage),
             microwatts(r["result"].after.nominal_leakage),
             percent(1 - r["result"].after.nominal_leakage
                     / r["result"].before.nominal_leakage),
             microwatts(r["result"].after.mean_leakage),
             f"{r['result'].after.timing_yield:.4f}",
             percent(r["result"].after.high_vth_fraction),
             f"{r['result'].runtime_seconds:.1f}"]
            for r in rows
        ],
        title="T2: deterministic dual-Vth + sizing at Tmax = 1.1 x corner Dmin",
    )
    report("exp02_deterministic", table)

    for r in rows:
        result = r["result"]
        # The baseline must deliver large savings...
        assert result.after.nominal_leakage < 0.5 * result.before.nominal_leakage
        # ...while its corner pessimism shows up as near-unity yield.
        assert result.after.timing_yield > 0.99
        # The flow's blind spot: the statistical mean it never looked at
        # exceeds the nominal figure it optimized.
        assert result.after.mean_leakage > result.after.nominal_leakage
