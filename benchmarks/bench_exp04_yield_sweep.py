"""T4 — optimized leakage vs timing-yield target.

The statistical optimizer re-runs at eta in {0.84, 0.90, 0.95, 0.99} with
a fixed Tmax per circuit.  Expected shape: leakage rises monotonically as
the yield requirement tightens — yield is purchased with leakage.
"""

from __future__ import annotations

from _harness import report, run_once

from repro.analysis import format_table, microwatts
from repro.analysis.experiments import prepare
from repro.analysis.sweeps import yield_target_sweep
from repro.core import OptimizerConfig

CIRCUITS = ("c432", "c880", "c1908")
TARGETS = (0.84, 0.90, 0.95, 0.99)


def run_experiment():
    config = OptimizerConfig()
    out = {}
    for name in CIRCUITS:
        setup = prepare(name)
        out[name] = yield_target_sweep(setup, TARGETS, config=config)
    return out


def bench_exp04_yield_sweep(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = []
    for name, sweep in results.items():
        for r in sweep:
            rows.append(
                [name, f"{r['yield_target']:.2f}", f"{r['achieved_yield']:.4f}",
                 microwatts(r["mean_leakage"]), microwatts(r["hc_leakage"]),
                 f"{100 * r['high_vth_fraction']:.1f}%"]
            )
    table = format_table(
        ["circuit", "eta", "achieved", "mean leak [uW]", "mean+1.645s [uW]",
         "high-Vth"],
        rows,
        title="T4: statistical optimization vs timing-yield target (fixed Tmax)",
    )
    report("exp04_yield_sweep", table)

    for name, sweep in results.items():
        leaks = [r["mean_leakage"] for r in sweep]
        # Monotone (small tolerance for greedy noise): tighter yield
        # targets can only cost leakage.
        for a, b in zip(leaks, leaks[1:]):
            assert b >= a * 0.98, name
        assert leaks[-1] > leaks[0], name
        for r in sweep:
            assert r["achieved_yield"] >= r["yield_target"] - 1e-6
