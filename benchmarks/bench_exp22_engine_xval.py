"""P2 — engine cross-validation: every SSTA backend vs MC ground truth.

The engine registry (:mod:`repro.engines`) promises that ``clark``,
``histogram``, and ``mc`` answer the same question — P(max delay <= T)
— through three different approximations.  This experiment holds all
three to a common reference: a 20000-die Monte-Carlo run with a seed
*distinct* from the mc engine's own (so the mc backend is validated as
an estimator, not checked against itself).

For each ISCAS circuit and each backend we record the timing yield at
three clock margins over the nominal (clark) mean, the absolute yield
error against the truth run, a Kolmogorov-Smirnov distance between the
backend's max-delay CDF and the truth empirical CDF (the one-sample KS
statistic evaluated over the truth samples), and the wall-clock runtime
of one ``analyze`` call.

The committed claim: the histogram and mc backends land within
``TOLERANCE`` (0.02) of the truth yield at every margin on every
circuit.  Clark's error is recorded but not pinned — its Gaussian
max is a known approximation and the gap *is* the result.
"""

from __future__ import annotations

import time

from _harness import report, report_json, run_once

from repro.analysis import format_table
from repro.analysis.experiments import prepare
from repro.engines import ENGINE_NAMES, get_engine

CIRCUITS = ("c432", "c880")
MARGINS = (1.05, 1.10, 1.15)

#: Ground truth: a large MC run whose seed differs from the mc engine's
#: own, so the mc backend's agreement is a genuine cross-check.
TRUTH_SAMPLES = 20000
TRUTH_SEED = 2222

#: Backend knobs under test (clark has none).
ENGINE_PARAMS = {
    "clark": {},
    "histogram": {"bins": 256},
    "mc": {"n_samples": 4000, "seed": 22},
}

#: The committed claim: histogram and mc yields within this absolute
#: tolerance of the truth yield at every margin.
TOLERANCE = 0.02
PINNED_ENGINES = ("histogram", "mc")


def ks_distance(dist, truth_sorted):
    """One-sample KS statistic of ``dist`` against the truth samples.

    sup_x |F_dist(x) - F_truth(x)| evaluated at the truth sample points,
    checking the empirical CDF on both sides of each step.
    """
    n = truth_sorted.size
    worst = 0.0
    for i, x in enumerate(truth_sorted):
        f = dist.cdf(float(x))
        worst = max(worst, abs(f - (i + 1) / n), abs(f - i / n))
    return worst


def run_experiment():
    circuits = {}
    for circuit_name in CIRCUITS:
        setup = prepare(circuit_name)
        truth = get_engine("mc").analyze(
            setup.circuit, setup.varmodel,
            n_samples=TRUTH_SAMPLES, seed=TRUTH_SEED,
        )
        nominal_mean = get_engine("clark").analyze(
            setup.circuit, setup.varmodel
        ).max_delay.mean
        targets = {m: m * nominal_mean for m in MARGINS}
        truth_sorted = truth.max_delay.sorted_samples

        engines = {}
        for name in ENGINE_NAMES:
            t0 = time.perf_counter()
            result = get_engine(name).analyze(
                setup.circuit, setup.varmodel, **ENGINE_PARAMS[name]
            )
            runtime = time.perf_counter() - t0
            yields = {
                f"m{m:g}": result.yield_at(t) for m, t in targets.items()
            }
            errors = {
                f"m{m:g}": abs(result.yield_at(t) - truth.yield_at(t))
                for m, t in targets.items()
            }
            engines[name] = {
                "runtime_seconds": runtime,
                "mean_s": result.max_delay.mean,
                "sigma_s": result.max_delay.sigma,
                "ks_distance": ks_distance(result.max_delay, truth_sorted),
                "yields": yields,
                "yield_errors": errors,
                "max_yield_error": max(errors.values()),
            }

        circuits[circuit_name] = {
            "nominal_mean_s": nominal_mean,
            "truth": {
                "mean_s": truth.max_delay.mean,
                "sigma_s": truth.max_delay.sigma,
                "yields": {
                    f"m{m:g}": truth.yield_at(t)
                    for m, t in targets.items()
                },
            },
            "engines": engines,
        }
    return circuits


def bench_exp22_engine_xval(benchmark):
    circuits = run_once(benchmark, run_experiment)

    rows = [
        [circuit, name,
         f"{e['mean_s']:.4e}",
         f"{e['sigma_s']:.2e}",
         f"{e['ks_distance']:.4f}",
         f"{e['max_yield_error']:.4f}",
         f"{e['runtime_seconds'] * 1e3:.1f} ms"]
        for circuit, c in circuits.items()
        for name, e in c["engines"].items()
    ]
    report(
        "exp22_engine_xval",
        format_table(
            ["circuit", "engine", "mean", "sigma", "KS dist",
             "max yield err", "runtime"],
            rows,
            title=(
                f"P2: engine cross-validation vs {TRUTH_SAMPLES}-die MC "
                f"truth (seed {TRUTH_SEED}) at margins "
                f"{', '.join(f'{m:g}x' for m in MARGINS)} nominal mean"
            ),
        ),
    )
    report_json("exp22_engine_xval", {
        "truth": {
            "engine": "mc",
            "n_samples": TRUTH_SAMPLES,
            "seed": TRUTH_SEED,
        },
        "margins": list(MARGINS),
        "tolerance": TOLERANCE,
        "pinned_engines": list(PINNED_ENGINES),
        "engine_params": ENGINE_PARAMS,
        "circuits": circuits,
    })

    # The committed claim, enforced at generation time so a regression
    # cannot ship a JSON that contradicts its own tolerance field.
    for circuit, c in circuits.items():
        for name in PINNED_ENGINES:
            err = c["engines"][name]["max_yield_error"]
            assert err <= TOLERANCE, (circuit, name, err)
        # Every backend must at least agree on the bulk of the
        # distribution: mean within 2% of truth.
        for name, e in c["engines"].items():
            truth_mean = c["truth"]["mean_s"]
            assert abs(e["mean_s"] - truth_mean) <= 0.02 * truth_mean, (
                circuit, name
            )
