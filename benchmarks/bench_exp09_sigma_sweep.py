"""F4 — extra statistical savings vs variability magnitude.

Both sigmas scaled by {0.25, 0.5, 1.0, 1.5, 2.0}: as variation grows, the
corner gets more pessimistic and the leakage tail fattens, so the
statistical flow's advantage over the deterministic baseline widens.  At
vanishing variation the two flows coincide (shape anchor at ~0 savings).
"""

from __future__ import annotations

from _harness import report, run_once

from repro.analysis import format_table, microwatts, percent
from repro.analysis.sweeps import sigma_sweep
from repro.core import OptimizerConfig

CIRCUIT = "c432"
SCALES = (0.1, 0.5, 1.0, 1.5, 2.0)


def run_experiment():
    return sigma_sweep(CIRCUIT, SCALES, config=OptimizerConfig())


def bench_exp09_sigma_sweep(benchmark):
    rows = run_once(benchmark, run_experiment)
    table = format_table(
        ["sigma scale", "det mean [uW]", "stat mean [uW]", "extra savings",
         "stat yield"],
        [
            [f"{r['sigma_scale']:.2f}", microwatts(r["det_mean_leakage"]),
             microwatts(r["stat_mean_leakage"]), percent(r["extra_savings"]),
             f"{r['stat_yield']:.4f}"]
            for r in rows
        ],
        title=f"F4: extra statistical savings vs variability on {CIRCUIT}",
    )
    report("exp09_sigma_sweep", table)

    savings = [r["extra_savings"] for r in rows]
    # The gap widens with sigma: the largest-variation point clearly
    # exceeds the smallest, and the trend is (weakly) increasing.
    assert savings[-1] > savings[0] + 0.15
    assert savings[-1] > 0.30
    # Absolute deterministic leakage also grows with sigma (the corner
    # forces more speed margin as variation increases).
    det = [r["det_mean_leakage"] for r in rows]
    assert det[-1] > det[0]
