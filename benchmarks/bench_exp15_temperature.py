"""E2 (extension) — leakage vs operating temperature.

Leakage numbers live or die by their temperature assumption: the thermal
voltage scales the subthreshold exponential, so heating from room to
burn-in multiplies leakage several-fold.  The sweep runs on the
*optimized* c432 implementation — the deployment-relevant question —
and checks the optimized design keeps its relative advantage when hot.
"""

from __future__ import annotations

from _harness import report, run_once

from repro.analysis import format_table, microwatts
from repro.analysis.experiments import prepare
from repro.core import OptimizerConfig, optimize_statistical
from repro.power import leakage_temperature_sweep

CIRCUIT = "c432"
TEMPS_C = (25.0, 50.0, 75.0, 100.0, 125.0)


def run_experiment():
    temps_k = [t + 273.15 for t in TEMPS_C]
    setup = prepare(CIRCUIT)
    before = leakage_temperature_sweep(setup.circuit, temps_k)
    optimize_statistical(
        setup.circuit, setup.spec, setup.varmodel, config=OptimizerConfig()
    )
    after = leakage_temperature_sweep(setup.circuit, temps_k)
    return {"before": before, "after": after}


def bench_exp15_temperature(benchmark):
    out = run_once(benchmark, run_experiment)
    table = format_table(
        ["T [C]", "unopt leak [uW]", "opt leak [uW]", "unopt x", "opt x",
         "savings"],
        [
            [f"{b['temperature_c']:.0f}",
             microwatts(b["leakage_power"]),
             microwatts(a["leakage_power"]),
             f"{b['relative']:.2f}",
             f"{a['relative']:.2f}",
             f"{100 * (1 - a['leakage_power'] / b['leakage_power']):.1f}%"]
            for b, a in zip(out["before"], out["after"])
        ],
        title=f"E2: leakage vs temperature on {CIRCUIT} (pre/post optimization)",
    )
    report("exp15_temperature", table)

    for series in ("before", "after"):
        powers = [r["leakage_power"] for r in out[series]]
        assert all(x < y for x, y in zip(powers, powers[1:])), series
    # Room-to-125C multiplies leakage several-fold.
    assert out["before"][-1]["relative"] > 3.0
    # The optimized design keeps a large advantage across the whole range.
    for b, a in zip(out["before"], out["after"]):
        assert a["leakage_power"] < 0.5 * b["leakage_power"]
