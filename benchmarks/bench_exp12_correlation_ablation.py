"""A2 — spatial/inter-die correlation ablation.

The same total sigma is injected twice: once with the default
inter-die + spatially-correlated + random split, once forced fully
independent per gate.  Correlation changes both the physics and the
optimization outcome:

* full-chip leakage spread collapses when variation averages across
  thousands of independent gates (law of large numbers), and the circuit-
  delay sigma shrinks likewise;
* with correlation, the corner is *closer to truth* (everything really
  does move together), so the deterministic flow loses less — the
  statistical advantage is structurally larger in the independent case
  relative to what the corner should have cost.
"""

from __future__ import annotations

from _harness import report, run_once

from repro.analysis import format_table, microwatts, percent
from repro.analysis.experiments import prepare, run_comparison
from repro.core import OptimizerConfig
from repro.power import analyze_statistical_leakage
from repro.timing import run_ssta

CIRCUIT = "c880"


def run_experiment():
    config = OptimizerConfig()
    out = {}
    for label, correlated in (("correlated", True), ("independent", False)):
        setup = prepare(CIRCUIT, correlated=correlated)
        leak = analyze_statistical_leakage(setup.circuit, setup.varmodel)
        ssta = run_ssta(setup.circuit, setup.varmodel)
        comparison = run_comparison(setup, config=config)
        out[label] = {
            "leak_cv": leak.std_current / leak.summary.mean,
            "delay_cv": ssta.circuit_delay.sigma / ssta.circuit_delay.mean,
            "comparison": comparison,
        }
    return out


def bench_exp12_correlation_ablation(benchmark):
    out = run_once(benchmark, run_experiment)
    table = format_table(
        ["variant", "leak CV", "delay CV", "det mean [uW]", "stat mean [uW]",
         "extra savings"],
        [
            [label,
             f"{d['leak_cv']:.3f}",
             f"{d['delay_cv']:.4f}",
             microwatts(d["comparison"].deterministic.after.mean_leakage),
             microwatts(d["comparison"].statistical.after.mean_leakage),
             percent(d["comparison"].extra_mean_savings)]
            for label, d in out.items()
        ],
        title=f"A2: correlation structure ablation on {CIRCUIT} (equal total sigma)",
    )
    report("exp12_correlation_ablation", table)

    corr, flat = out["correlated"], out["independent"]
    # Independence averages variation away at the chip level.
    assert corr["leak_cv"] > 2 * flat["leak_cv"]
    assert corr["delay_cv"] > flat["delay_cv"]
    # The statistical flow wins in both regimes.
    assert corr["comparison"].extra_mean_savings > 0
    assert flat["comparison"].extra_mean_savings > 0
