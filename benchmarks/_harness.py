"""Shared plumbing for the benchmark harness.

Each ``bench_expNN_*.py`` regenerates one table or figure of the paper's
evaluation (see DESIGN.md section 4).  Conventions:

* experiments run **once** per session (``run_once`` wraps
  ``benchmark.pedantic(rounds=1)``), because a full optimizer comparison
  is minutes of work — pytest-benchmark still records the wall time;
* every experiment prints its table/series and also writes it to
  ``benchmarks/results/<exp>.txt`` so the artifact survives pytest's
  output capture;
* assertions check the *shape* the paper reports (who wins, monotone
  trends, crossovers), never absolute numbers — our substrate is an
  analytic simulator, not the authors' testbed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, TypeVar

from repro.atomicio import atomic_write_text

RESULTS_DIR = Path(__file__).resolve().parent / "results"

T = TypeVar("T")


def run_once(benchmark, fn: Callable[[], T]) -> T:
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def bench_jobs(default: int = 1) -> int:
    """Worker count for sharded MC in experiments.

    ``REPRO_BENCH_JOBS`` overrides (0 = all CPUs) — the knob CI and local
    runs use to exercise the parallel path without editing experiments.
    Statistics are bitwise identical for any value, so this only moves
    wall time.
    """
    return int(os.environ.get("REPRO_BENCH_JOBS", default))


def report(exp_id: str, text: str) -> None:
    """Print an experiment's table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n=== {exp_id} ===\n{text}\n"
    print(banner)
    atomic_write_text(RESULTS_DIR / f"{exp_id}.txt", text + "\n")


def report_json(exp_id: str, payload: dict) -> None:
    """Persist a machine-readable experiment record under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(
        RESULTS_DIR / f"{exp_id}.json",
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
    )
