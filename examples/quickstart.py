#!/usr/bin/env python
"""Quickstart: statistical vs deterministic leakage optimization.

Builds the c432-profile benchmark, runs the classical deterministic
dual-Vth + sizing flow and the paper's statistical flow at the same delay
constraint, and prints the comparison — the smallest end-to-end tour of
the library's public API.

Run:  python examples/quickstart.py
"""

from repro import OptimizerConfig, prepare, run_comparison
from repro.analysis import format_table, microwatts, percent, picoseconds


def main() -> None:
    # One call builds the library, the benchmark circuit, the variation
    # spec, and the placed variation model.
    setup = prepare("c432")
    print(
        f"circuit {setup.circuit.name}: {setup.circuit.n_gates} gates, "
        f"depth {setup.circuit.depth}, "
        f"{setup.varmodel.n_globals} global variation factors"
    )

    # Both flows at the same Tmax (1.1x the corner minimum delay) — the
    # deterministic flow checks a 3-sigma corner, the statistical flow
    # checks P(delay <= Tmax) >= 95%.
    config = OptimizerConfig(delay_margin=1.10, yield_target=0.95)
    row = run_comparison(setup, config=config)
    det, stat = row.deterministic, row.statistical

    print(f"\nTmax = {picoseconds(row.target_delay)} ps "
          f"(corner Dmin = {picoseconds(det.min_delay)} ps)\n")
    table = format_table(
        ["metric", "unoptimized", "deterministic", "statistical"],
        [
            ["mean leakage [uW]",
             microwatts(det.before.mean_leakage),
             microwatts(det.after.mean_leakage),
             microwatts(stat.after.mean_leakage)],
            ["95th-pct leakage [uW]",
             microwatts(det.before.p95_leakage),
             microwatts(det.after.p95_leakage),
             microwatts(stat.after.p95_leakage)],
            ["timing yield @ Tmax",
             f"{det.before.timing_yield:.3f}",
             f"{det.after.timing_yield:.3f}",
             f"{stat.after.timing_yield:.3f}"],
            ["high-Vth gates",
             percent(det.before.high_vth_fraction),
             percent(det.after.high_vth_fraction),
             percent(stat.after.high_vth_fraction)],
            ["runtime [s]",
             "-",
             f"{det.runtime_seconds:.2f}",
             f"{stat.runtime_seconds:.2f}"],
        ],
    )
    print(table)
    print(
        f"\nstatistical flow saves an extra "
        f"{percent(row.extra_mean_savings)} mean leakage over the "
        f"deterministic baseline at the same constraint."
    )


if __name__ == "__main__":
    main()
