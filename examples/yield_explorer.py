#!/usr/bin/env python
"""Yield explorer: how the timing-yield target prices leakage.

The statistical optimizer's constraint is P(delay <= Tmax) >= eta.  This
example sweeps eta on the c880-profile benchmark, showing the
leakage-vs-yield price curve the paper's yield-sweep table reports, and
cross-validates the SSTA yield numbers against Monte Carlo on the final
optimized circuit.

Run:  python examples/yield_explorer.py
"""

from repro import OptimizerConfig, prepare, run_monte_carlo_sta, run_ssta
from repro.analysis import format_table, microwatts
from repro.analysis.sweeps import yield_target_sweep


def main() -> None:
    setup = prepare("c880")
    config = OptimizerConfig()
    print(f"sweeping yield targets on {setup.circuit.name} "
          f"({setup.circuit.n_gates} gates)...\n")

    targets = (0.84, 0.90, 0.95, 0.99)
    rows = yield_target_sweep(setup, targets, config=config)

    table = format_table(
        ["eta target", "achieved yield", "mean leakage [uW]",
         "mean+1.645s [uW]", "high-Vth"],
        [
            [f"{r['yield_target']:.2f}",
             f"{r['achieved_yield']:.4f}",
             microwatts(r["mean_leakage"]),
             microwatts(r["hc_leakage"]),
             f"{100 * r['high_vth_fraction']:.1f}%"]
            for r in rows
        ],
        title="statistical optimization vs yield target (same Tmax)",
    )
    print(table)

    # The circuit is left in the last (eta = 0.99) optimized state; check
    # the analytic yield claim against sampled dies.
    ssta = run_ssta(setup.circuit, setup.varmodel)
    mc = run_monte_carlo_sta(setup.circuit, setup.varmodel, n_samples=4000, seed=7)
    t99 = ssta.delay_at_yield(0.99)
    print(f"\ncross-check at the SSTA 99% delay point ({t99 * 1e12:.1f} ps):")
    print(f"  SSTA yield        {ssta.timing_yield(t99):.4f}")
    print(f"  Monte-Carlo yield {mc.timing_yield(t99):.4f}  (4000 dies)")


if __name__ == "__main__":
    main()
