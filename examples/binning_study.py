#!/usr/bin/env python
"""Binning study: joint frequency/leakage parametric yield.

A die is sellable only if it both meets timing *and* stays under a power
cap — and because the same channel-length variation that makes a die fast
also makes it leak, the two requirements anti-correlate.  This example
quantifies the binning loss on the c880-profile benchmark, before and
after statistical optimization, with the analytic bivariate-Gaussian
estimator cross-checked against Monte Carlo.

Run:  python examples/binning_study.py
"""

from repro import optimize_statistical, prepare, run_ssta
from repro.analysis import (
    analytic_parametric_yield,
    format_table,
    mc_parametric_yield,
)
from repro.power import analyze_statistical_leakage


def yields_at(circuit, varmodel, tmax, cap):
    mc = mc_parametric_yield(circuit, varmodel, tmax, cap, n_samples=4000, seed=23)
    an = analytic_parametric_yield(circuit, varmodel, tmax, cap)
    return mc, an


def main() -> None:
    setup = prepare("c880")
    circuit, varmodel = setup.circuit, setup.varmodel

    # Operating point: the 90% timing point and the 90% leakage point of
    # the unoptimized circuit — each alone passes 90% of dies.
    ssta = run_ssta(circuit, varmodel)
    leak = analyze_statistical_leakage(circuit, varmodel)
    tmax = ssta.circuit_delay.percentile(0.90)
    cap = leak.percentile_power(0.90)
    mc, an = yields_at(circuit, varmodel, tmax, cap)

    print(f"{circuit.name}: Tmax = {tmax * 1e12:.0f} ps, "
          f"leakage cap = {cap * 1e6:.1f} uW\n")
    table = format_table(
        ["quantity", "Monte Carlo", "analytic"],
        [
            ["timing yield", f"{mc.timing_yield:.4f}", f"{an.timing_yield:.4f}"],
            ["leakage yield", f"{mc.leakage_yield:.4f}", f"{an.leakage_yield:.4f}"],
            ["joint yield", f"{mc.joint_yield:.4f}", f"{an.joint_yield:.4f}"],
            ["independence product",
             f"{mc.timing_yield * mc.leakage_yield:.4f}",
             f"{an.timing_yield * an.leakage_yield:.4f}"],
            ["corr(delay, log leak)", f"{mc.correlation:+.3f}", f"{an.correlation:+.3f}"],
        ],
        title="unoptimized circuit",
    )
    print(table)
    print(
        f"\nbinning loss vs independence: "
        f"{(mc.timing_yield * mc.leakage_yield - mc.joint_yield) * 100:.1f} "
        "points of yield — fast dies blow the power cap."
    )

    # After optimization the distribution shifts far below the cap: the
    # same cap now passes essentially every timing-feasible die.
    result = optimize_statistical(circuit, setup.spec, varmodel)
    mc2, an2 = yields_at(circuit, varmodel, result.target_delay, cap)
    print(f"\nafter statistical optimization "
          f"(Tmax = {result.target_delay * 1e12:.0f} ps, same power cap):")
    print(f"  joint yield MC/analytic: {mc2.joint_yield:.4f} / {an2.joint_yield:.4f}")


if __name__ == "__main__":
    main()
