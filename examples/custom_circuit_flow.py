#!/usr/bin/env python
"""Custom-circuit flow: bring your own netlist.

Shows the two ways to get a circuit into the library — parsing ISCAS85
``.bench`` text and building structurally with the generators — then runs
the full analysis stack (STA, SSTA, leakage statistics, dynamic power) and
the statistical optimizer on a 16-bit ripple-carry adder.

Run:  python examples/custom_circuit_flow.py
"""

from repro import (
    OptimizerConfig,
    analyze_dynamic_power,
    analyze_leakage,
    analyze_statistical_leakage,
    build_variation_model,
    default_library,
    default_variation,
    optimize_statistical,
    parse_bench,
    run_ssta,
    run_sta,
)
from repro.circuit import ripple_carry_adder

BENCH_TEXT = """\
# majority-of-three with an enable
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(en)
OUTPUT(out)
ab = AND(a, b)
bc = AND(b, c)
ca = AND(c, a)
maj = OR(ab, bc, ca)
out = AND(maj, en)
"""


def main() -> None:
    lib = default_library()

    # --- 1. a netlist from .bench text --------------------------------------
    maj = parse_bench(BENCH_TEXT, lib, name="majority")
    sta = run_sta(maj)
    print(f"majority: {maj.n_gates} gates, depth {maj.depth}, "
          f"delay {sta.circuit_delay * 1e12:.1f} ps")

    # --- 2. a structural generator ------------------------------------------
    adder = ripple_carry_adder(lib, bits=16)
    spec = default_variation(lib.tech.lnom)
    varmodel = build_variation_model(adder, spec)

    sta = run_sta(adder)
    ssta = run_ssta(adder, varmodel)
    leak = analyze_leakage(adder)
    stat_leak = analyze_statistical_leakage(adder, varmodel)
    dyn = analyze_dynamic_power(adder)
    print(f"\nrca16: {adder.n_gates} gates, depth {adder.depth}")
    print(f"  nominal delay        {sta.circuit_delay * 1e12:9.1f} ps")
    print(f"  SSTA delay           {ssta.circuit_delay.mean * 1e12:9.1f}"
          f" +/- {ssta.circuit_delay.sigma * 1e12:.1f} ps")
    print(f"  nominal leakage      {leak.total_power * 1e6:9.3f} uW")
    print(f"  mean leakage         {stat_leak.mean_power * 1e6:9.3f} uW "
          f"(x{stat_leak.mean_inflation:.2f} vs nominal)")
    print(f"  95th-pct leakage     {stat_leak.percentile_power(0.95) * 1e6:9.3f} uW")
    print(f"  dynamic @ 1 GHz      {dyn.total * 1e6:9.1f} uW")

    # --- 3. optimize with a custom configuration ----------------------------
    config = OptimizerConfig(delay_margin=1.15, yield_target=0.99)
    result = optimize_statistical(adder, spec, varmodel, config=config)
    print(f"\n{result.summary()}")
    print(f"  delay constraint     {result.target_delay * 1e12:9.1f} ps")
    print(f"  mean leakage after   {result.after.mean_leakage * 1e6:9.3f} uW")
    print(f"  yield after          {result.after.timing_yield:9.4f} "
          f"(target {config.yield_target})")


if __name__ == "__main__":
    main()
