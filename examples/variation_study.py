#!/usr/bin/env python
"""Variation study: why leakage must be treated statistically.

Demonstrates the paper's motivating physics on the c499-profile benchmark:

1. full-chip leakage is lognormal — its mean exceeds the nominal value and
   its 95th percentile dwarfs it (ASCII histogram, analytic vs MC);
2. fast dies are leaky dies — the joint (delay, leakage) Monte-Carlo cloud
   is strongly anti-correlated through shared channel-length variation;
3. optimization reshapes the whole distribution, not just its nominal
   point.

Run:  python examples/variation_study.py
"""

import numpy as np

from repro import (
    analyze_leakage,
    analyze_statistical_leakage,
    optimize_statistical,
    prepare,
    run_monte_carlo_leakage,
    run_monte_carlo_sta,
)


def ascii_histogram(values: np.ndarray, bins: int = 14, width: int = 48) -> str:
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max()
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak)) if peak else ""
        lines.append(f"  {lo * 1e6:7.2f}-{hi * 1e6:7.2f} uW |{bar}")
    return "\n".join(lines)


def main() -> None:
    setup = prepare("c499")
    circuit, varmodel = setup.circuit, setup.varmodel

    # --- 1. the leakage distribution ----------------------------------------
    nominal = analyze_leakage(circuit).total_power
    analytic = analyze_statistical_leakage(circuit, varmodel)
    mc = run_monte_carlo_leakage(circuit, varmodel, n_samples=5000, seed=11)
    print(f"{circuit.name}: {circuit.n_gates} gates")
    print(f"  nominal leakage        {nominal * 1e6:8.2f} uW")
    print(f"  mean     analytic/MC   {analytic.mean_power * 1e6:8.2f} / "
          f"{mc.mean_power * 1e6:.2f} uW")
    print(f"  95th pct analytic/MC   {analytic.percentile_power(0.95) * 1e6:8.2f} / "
          f"{mc.percentile_power(0.95) * 1e6:.2f} uW")
    print("\nleakage distribution (5000 Monte-Carlo dies):")
    print(ascii_histogram(mc.powers))

    # --- 2. fast dies leak most ----------------------------------------------
    timing_mc = run_monte_carlo_sta(circuit, varmodel, n_samples=3000, seed=13)
    leak_same_dies = run_monte_carlo_leakage(
        circuit, varmodel, samples=timing_mc.samples
    )
    rho = np.corrcoef(timing_mc.circuit_delays, leak_same_dies.currents)[0, 1]
    print(f"\ncorrelation(delay, leakage) across dies: {rho:+.3f}")
    print("  (strongly negative: the fastest dies are the leakiest — the")
    print("   joint behaviour statistical optimization exploits)")

    # --- 3. optimization reshapes the distribution ---------------------------
    result = optimize_statistical(circuit, setup.spec, varmodel)
    after_mc = run_monte_carlo_leakage(circuit, varmodel, n_samples=5000, seed=11)
    print(f"\nafter statistical optimization "
          f"(Tmax = {result.target_delay * 1e12:.0f} ps, "
          f"yield {result.after.timing_yield:.3f}):")
    print(ascii_histogram(after_mc.powers))
    print(f"\n  mean leakage {mc.mean_power * 1e6:.2f} -> "
          f"{after_mc.mean_power * 1e6:.2f} uW")


if __name__ == "__main__":
    main()
