"""Setup shim.

The offline environment has setuptools but no ``wheel`` package, so PEP 660
editable installs (which need ``bdist_wheel``) fail.  A classic ``setup.py``
lets ``pip install -e .`` fall back to the legacy develop-mode install.
Package metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Statistical leakage-power optimization under process variation "
        "using dual-Vth assignment and gate sizing (DAC 2004 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)
