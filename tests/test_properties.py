"""Hypothesis property-based tests on the core mathematical invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tech import get_technology, stack_leakage_factor
from repro.tech.device import off_current, on_current
from repro.tech.technology import ChannelType, VthClass
from repro.timing import Canonical, max_moments
from repro.variation import (
    VariationSpec,
    lognormal_mean,
    lognormal_params_from_moments,
    lognormal_variance,
    sum_of_lognormals,
)

TECH = get_technology("ptm100")

finite = st.floats(allow_nan=False, allow_infinity=False)
means = st.floats(-5.0, 5.0)
variances = st.floats(1e-6, 10.0)
covs = st.floats(-0.9, 0.9)


class TestClarkProperties:
    @given(ma=means, va=variances, mb=means, vb=variances, rho=covs)
    @settings(max_examples=300)
    def test_max_dominates_means(self, ma, va, mb, vb, rho):
        cov = rho * math.sqrt(va * vb)
        mean, var, tightness = max_moments(ma, va, mb, vb, cov)
        assert mean >= max(ma, mb) - 1e-9
        assert var >= -1e-12
        assert 0.0 <= tightness <= 1.0

    @given(ma=means, va=variances, mb=means, vb=variances, rho=covs)
    @settings(max_examples=200)
    def test_max_symmetric(self, ma, va, mb, vb, rho):
        cov = rho * math.sqrt(va * vb)
        m1, v1, t1 = max_moments(ma, va, mb, vb, cov)
        m2, v2, t2 = max_moments(mb, vb, ma, va, cov)
        assert m1 == pytest.approx(m2, rel=1e-9, abs=1e-12)
        assert v1 == pytest.approx(v2, rel=1e-6, abs=1e-12)
        assert t1 == pytest.approx(1.0 - t2, abs=1e-9)

    @given(ma=means, va=variances, shift=st.floats(0.0, 5.0))
    @settings(max_examples=200)
    def test_max_with_dominated_copy(self, ma, va, shift):
        # max(A, A - shift) has mean >= mean(A).
        mean, _, tightness = max_moments(ma, va, ma - shift, va, va)
        assert mean == pytest.approx(ma, abs=1e-9)
        assert tightness == 1.0 or shift == 0.0


class TestCanonicalProperties:
    sens_arrays = st.lists(st.floats(-1.0, 1.0), min_size=1, max_size=4)

    @given(m1=means, s1=sens_arrays, i1=st.floats(0, 1),
           m2=means, i2=st.floats(0, 1))
    @settings(max_examples=200)
    def test_sum_means_and_variance(self, m1, s1, i1, m2, i2):
        a = Canonical(m1, np.array(s1), i1)
        b = Canonical(m2, np.zeros(len(s1)), i2)
        s = a.plus(b)
        assert s.mean == pytest.approx(m1 + m2, rel=1e-9, abs=1e-12)
        assert s.variance == pytest.approx(
            a.variance + b.variance, rel=1e-9, abs=1e-12
        )

    @given(m1=means, s1=sens_arrays, i1=st.floats(0, 1), m2=means,
           i2=st.floats(0, 1))
    @settings(max_examples=200)
    def test_max_at_least_each_operand_mean(self, m1, s1, i1, m2, i2):
        a = Canonical(m1, np.array(s1), i1)
        b = Canonical(m2, np.zeros(len(s1)), i2)
        m = a.maximum(b)
        assert m.mean >= max(m1, m2) - 1e-9

    @given(m=means, s=sens_arrays, i=st.floats(0, 1), k=st.floats(-3, 3))
    @settings(max_examples=200)
    def test_scaling_variance(self, m, s, i, k):
        c = Canonical(m, np.array(s), i).scaled(k)
        base = Canonical(m, np.array(s), i)
        assert c.variance == pytest.approx(k * k * base.variance, rel=1e-9, abs=1e-12)


class TestLognormalProperties:
    @given(mu=st.floats(-10, 3), sigma=st.floats(1e-3, 1.5))
    @settings(max_examples=200)
    def test_moment_matching_round_trip(self, mu, sigma):
        mean = lognormal_mean(mu, sigma)
        var = lognormal_variance(mu, sigma)
        mu2, sigma2 = lognormal_params_from_moments(mean, var)
        assert mu2 == pytest.approx(mu, rel=1e-6, abs=1e-9)
        assert sigma2 == pytest.approx(sigma, rel=1e-6, abs=1e-9)

    @given(
        log_means=st.lists(st.floats(-5, 0), min_size=1, max_size=20),
        load=st.floats(0.0, 0.5),
        indep=st.floats(0.0, 0.5),
    )
    @settings(max_examples=100)
    def test_sum_mean_is_sum_of_means(self, log_means, load, indep):
        n = len(log_means)
        lm = np.array(log_means)
        loadings = np.full((n, 1), load)
        indeps = np.full(n, indep)
        s = sum_of_lognormals(lm, loadings, indeps)
        sigma_each = math.sqrt(load * load + indep * indep)
        expected = sum(lognormal_mean(m, sigma_each) for m in log_means)
        assert s.mean == pytest.approx(expected, rel=1e-9)
        assert s.variance >= -1e-12

    @given(
        log_means=st.lists(st.floats(-5, 0), min_size=2, max_size=12),
        load=st.floats(0.01, 0.5),
    )
    @settings(max_examples=100)
    def test_correlation_widens_sum(self, log_means, load):
        n = len(log_means)
        lm = np.array(log_means)
        correlated = sum_of_lognormals(lm, np.full((n, 1), load), np.zeros(n))
        independent = sum_of_lognormals(lm, np.zeros((n, 1)), np.full(n, load))
        assert correlated.variance >= independent.variance - 1e-15


class TestDeviceProperties:
    widths = st.floats(2e-7, 5e-6)
    dls = st.floats(-8e-9, 8e-9)
    dvs = st.floats(-0.05, 0.05)

    @given(w=widths, dl=dls, dv=dvs)
    @settings(max_examples=200)
    def test_off_current_positive_and_monotone_in_vth(self, w, dl, dv):
        low = off_current(TECH, VthClass.LOW, ChannelType.NMOS, w, dl, dv)
        high = off_current(TECH, VthClass.HIGH, ChannelType.NMOS, w, dl, dv)
        assert 0 < high < low

    @given(w=widths, dl=dls)
    @settings(max_examples=200)
    def test_shorter_channel_leaks_more_drives_more(self, w, dl):
        base = off_current(TECH, VthClass.LOW, ChannelType.NMOS, w, dl)
        shorter = off_current(TECH, VthClass.LOW, ChannelType.NMOS, w, dl - 1e-9)
        assert shorter > base
        vth = TECH.vth_low
        drive_base = on_current(TECH, ChannelType.NMOS, w, vth, dl)
        drive_short = on_current(TECH, ChannelType.NMOS, w, vth, dl - 1e-9)
        assert drive_short > drive_base

    @given(m=st.integers(0, 6), s=st.floats(1.0, 20.0))
    @settings(max_examples=200)
    def test_stack_factor_bounds(self, m, s):
        f = stack_leakage_factor(m, s)
        assert 0.0 <= f <= 1.0
        if m >= 1:
            assert f >= stack_leakage_factor(m + 1, s)


class TestVariationSpecProperties:
    fractions = st.floats(0.0, 1.0)

    @given(
        sigma_l=st.floats(1e-10, 1e-8),
        sigma_v=st.floats(1e-3, 0.05),
        f_inter=fractions,
        f_spatial=fractions,
    )
    @settings(max_examples=200)
    def test_variance_decomposition_always_sums(
        self, sigma_l, sigma_v, f_inter, f_spatial
    ):
        if f_inter + f_spatial > 1.0:
            total = f_inter + f_spatial
            f_inter, f_spatial = f_inter / total, f_spatial / total
        spec = VariationSpec(
            sigma_l_total=sigma_l,
            sigma_vth_total=sigma_v,
            inter_fraction_l=f_inter,
            spatial_fraction_l=f_spatial,
        )
        recomposed = (
            spec.sigma_l_inter**2
            + spec.sigma_l_spatial**2
            + spec.sigma_l_random**2
        )
        assert recomposed == pytest.approx(sigma_l**2, rel=1e-9)
