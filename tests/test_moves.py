"""Optimization moves: enumeration, application, and local estimates."""

import pytest

from repro.core import (
    apply_move,
    candidate_moves,
    fanin_cap_delta,
    leakage_gain,
    own_delay_cost,
    revert_move,
)
from repro.core.moves import Move
from repro.power import gate_input_probabilities, signal_probabilities
from repro.tech import VthClass
from repro.timing import TimingView


@pytest.fixture
def view(c17):
    return TimingView(c17)


@pytest.fixture
def gate_probs(c17):
    probs = signal_probabilities(c17)
    return gate_input_probabilities(c17, probs)


class TestEnumeration:
    def test_initial_state_offers_vth_swaps_only_down_blocked(self, view):
        # All gates at size 1 (grid bottom) and LOW vth: only vth moves.
        moves = list(candidate_moves(view, enable_vth=True, enable_sizing=True))
        assert all(m.kind == "vth" for m in moves)
        assert len(moves) == view.n_gates

    def test_upsized_gates_offer_downsizes(self, view, c17):
        c17.set_uniform(size=4.0)
        moves = list(candidate_moves(view, enable_vth=True, enable_sizing=True))
        kinds = {m.kind for m in moves}
        assert kinds == {"vth", "size"}
        sizes = [m for m in moves if m.kind == "size"]
        assert all(m.new_size == 3.0 for m in sizes)

    def test_high_vth_gates_not_reswapped(self, view, c17):
        c17.set_uniform(vth=VthClass.HIGH, size=2.0)
        moves = list(candidate_moves(view, enable_vth=True, enable_sizing=True))
        assert all(m.kind == "size" for m in moves)

    def test_families_can_be_disabled(self, view, c17):
        c17.set_uniform(size=2.0)
        only_vth = list(candidate_moves(view, enable_vth=True, enable_sizing=False))
        only_size = list(candidate_moves(view, enable_vth=False, enable_sizing=True))
        assert all(m.kind == "vth" for m in only_vth)
        assert all(m.kind == "size" for m in only_size)


class TestApplyRevert:
    def test_vth_round_trip(self, view):
        move = Move(index=0, kind="vth", new_vth=VthClass.HIGH)
        old = apply_move(view, move)
        assert view.gates[0].vth is VthClass.HIGH
        revert_move(view, move, old)
        assert view.gates[0].vth is VthClass.LOW

    def test_size_round_trip(self, view, c17):
        c17.set_uniform(size=4.0)
        move = Move(index=2, kind="size", new_size=3.0)
        old = apply_move(view, move)
        assert view.gates[2].size == 3.0
        revert_move(view, move, old)
        assert view.gates[2].size == 4.0

    def test_keys_distinct(self):
        a = Move(index=1, kind="vth", new_vth=VthClass.HIGH)
        b = Move(index=1, kind="size", new_size=2.0)
        assert a.key() != b.key()


class TestLocalEstimates:
    def test_vth_swap_slows_gate(self, view):
        move = Move(index=0, kind="vth", new_vth=VthClass.HIGH)
        cost = own_delay_cost(view, move)
        assert cost > 0
        assert fanin_cap_delta(view, move) == 0.0

    def test_vth_cost_matches_measured_delay(self, view):
        move = Move(index=0, kind="vth", new_vth=VthClass.HIGH)
        est = own_delay_cost(view, move)
        before = view.nominal_delay_of(0)
        old = apply_move(view, move)
        after = view.nominal_delay_of(0)
        revert_move(view, move, old)
        assert est == pytest.approx(after - before, rel=1e-9)

    def test_downsize_slows_gate_but_relieves_fanins(self, view, c17):
        c17.set_uniform(size=4.0)
        move = Move(index=5, kind="size", new_size=3.0)
        assert own_delay_cost(view, move) > 0
        assert fanin_cap_delta(view, move) < 0

    def test_estimates_restore_state(self, view):
        move = Move(index=0, kind="vth", new_vth=VthClass.HIGH)
        own_delay_cost(view, move)
        assert view.gates[0].vth is VthClass.LOW


class TestLeakageGain:
    def test_vth_swap_gain_positive_and_large(self, view, gate_probs):
        move = Move(index=0, kind="vth", new_vth=VthClass.HIGH)
        gain = leakage_gain(view, move, gate_probs)
        before = view.cells[0].mean_leakage(
            1.0, VthClass.LOW, gate_probs[view.gates[0].name]
        )
        assert gain > 0.8 * before  # high-Vth removes >80% of the leakage

    def test_downsize_gain_proportional(self, view, c17, gate_probs):
        c17.set_uniform(size=4.0)
        move = Move(index=0, kind="size", new_size=2.0)
        gain = leakage_gain(view, move, gate_probs)
        before = view.cells[0].mean_leakage(
            4.0, VthClass.LOW, gate_probs[view.gates[0].name]
        )
        assert gain == pytest.approx(before / 2, rel=1e-9)
