"""Multi-tenant admission and fair scheduling (service queue layer)."""

import pytest

from repro.errors import QueueFullError, RateLimitedError, ServiceError
from repro.service import JobQueue, TenantPolicy, TokenBucket, parse_job_request
from repro.service.jobs import Job


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_job(job_id, tenant="default", tmp_path=None, root=None):
    request = parse_job_request({
        "kind": "optimize", "tenant": tenant,
        "benchmark": "c17", "flow": "deterministic",
    })
    base = root if root is not None else tmp_path
    return Job(
        job_id=job_id,
        request=request,
        store_root=base / "store",
        ledger_path=base / "ledger.jsonl",
    )


class TestTokenBucket:
    def test_burst_then_exhaustion(self):
        bucket = TokenBucket(capacity=3.0, refill_per_s=1.0, now=0.0)
        assert bucket.try_take(0.0) is None
        assert bucket.try_take(0.0) is None
        assert bucket.try_take(0.0) is None
        wait = bucket.try_take(0.0)
        assert wait == pytest.approx(1.0)

    def test_refill_restores_admission(self):
        bucket = TokenBucket(capacity=1.0, refill_per_s=2.0, now=0.0)
        assert bucket.try_take(0.0) is None
        assert bucket.try_take(0.0) is not None
        assert bucket.try_take(0.5) is None  # 0.5s * 2/s = 1 token back

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(capacity=2.0, refill_per_s=1.0, now=0.0)
        bucket.try_take(0.0)
        bucket.try_take(1000.0)  # long idle must not bank > capacity
        assert bucket.tokens == pytest.approx(1.0)


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_queued": 0},
        {"max_running": 0},
        {"burst": 0.5},
        {"refill_per_s": 0.0},
    ])
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            TenantPolicy(**kwargs)

    def test_bad_depth_rejected(self):
        with pytest.raises(ServiceError):
            JobQueue(max_depth=0)


class TestAdmission:
    def test_rate_limit_carries_retry_after(self, tmp_path):
        clock = FakeClock()
        queue = JobQueue(
            policy=TenantPolicy(burst=1.0, refill_per_s=2.0), clock=clock,
        )
        queue.submit(make_job("j1", tmp_path=tmp_path))
        with pytest.raises(RateLimitedError) as err:
            queue.submit(make_job("j2", tmp_path=tmp_path))
        assert err.value.retry_after == pytest.approx(0.5)
        clock.advance(0.5)
        queue.submit(make_job("j2", tmp_path=tmp_path))

    def test_per_tenant_quota(self, tmp_path):
        queue = JobQueue(
            policy=TenantPolicy(max_queued=2, burst=10.0), clock=FakeClock(),
        )
        queue.submit(make_job("j1", tmp_path=tmp_path))
        queue.submit(make_job("j2", tmp_path=tmp_path))
        with pytest.raises(QueueFullError) as err:
            queue.submit(make_job("j3", tmp_path=tmp_path))
        assert "quota" in str(err.value)

    def test_quota_is_per_tenant(self, tmp_path):
        queue = JobQueue(
            policy=TenantPolicy(max_queued=1, burst=10.0), clock=FakeClock(),
        )
        queue.submit(make_job("j1", tenant="a", tmp_path=tmp_path))
        queue.submit(make_job("j2", tenant="b", tmp_path=tmp_path))
        assert queue.depth("a") == 1
        assert queue.depth("b") == 1

    def test_service_wide_depth_bound(self, tmp_path):
        queue = JobQueue(
            policy=TenantPolicy(max_queued=16, burst=100.0),
            max_depth=2, clock=FakeClock(),
        )
        queue.submit(make_job("j1", tenant="a", tmp_path=tmp_path))
        queue.submit(make_job("j2", tenant="b", tmp_path=tmp_path))
        with pytest.raises(QueueFullError) as err:
            queue.submit(make_job("j3", tenant="c", tmp_path=tmp_path))
        assert "service queue is full" in str(err.value)


class TestFairScheduling:
    def test_round_robin_across_tenants(self, tmp_path):
        queue = JobQueue(
            policy=TenantPolicy(burst=100.0), clock=FakeClock(),
        )
        for i in range(3):
            queue.submit(make_job(f"a{i}", tenant="a", tmp_path=tmp_path))
        queue.submit(make_job("b0", tenant="b", tmp_path=tmp_path))
        order = []
        while True:
            job = queue.next_job()
            if job is None:
                break
            order.append(job.job_id)
        # One tenant's backlog must not starve the other: b0 is served
        # second, not last.
        assert order == ["a0", "b0", "a1", "a2"]

    def test_fifo_within_tenant(self, tmp_path):
        queue = JobQueue(
            policy=TenantPolicy(burst=100.0), clock=FakeClock(),
        )
        for i in range(3):
            queue.submit(make_job(f"j{i}", tmp_path=tmp_path))
        assert [queue.next_job().job_id for _ in range(3)] == ["j0", "j1", "j2"]

    def test_max_running_skips_saturated_tenant(self, tmp_path):
        queue = JobQueue(
            policy=TenantPolicy(max_running=1, burst=100.0), clock=FakeClock(),
        )
        queue.submit(make_job("a0", tenant="a", tmp_path=tmp_path))
        queue.submit(make_job("a1", tenant="a", tmp_path=tmp_path))
        queue.submit(make_job("b0", tenant="b", tmp_path=tmp_path))
        first = queue.next_job()
        assert first.job_id == "a0"
        assert first.state == "running"
        # Tenant a is at max_running; only b is eligible.
        assert queue.next_job().job_id == "b0"
        assert queue.next_job() is None
        queue.finish(first)
        assert queue.next_job().job_id == "a1"

    def test_finish_without_running_raises(self, tmp_path):
        queue = JobQueue(clock=FakeClock())
        with pytest.raises(ServiceError):
            queue.finish(make_job("j1", tmp_path=tmp_path))

    def test_counters(self, tmp_path):
        queue = JobQueue(
            policy=TenantPolicy(burst=100.0), clock=FakeClock(),
        )
        queue.submit(make_job("a0", tenant="a", tmp_path=tmp_path))
        queue.submit(make_job("b0", tenant="b", tmp_path=tmp_path))
        assert queue.depth() == 2
        job = queue.next_job()
        assert queue.depth() == 1
        assert queue.running() == 1
        assert queue.running(job.tenant) == 1
        assert queue.tenants() == ("a", "b")
