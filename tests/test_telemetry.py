"""The telemetry subsystem: metrics, spans, worker absorption, exports."""

import json
import pickle

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    NULL_METRIC,
    NULL_SPAN,
    NULL_TELEMETRY,
    SPAN_SECONDS,
    MetricsRegistry,
    RegistrySnapshot,
    Telemetry,
    TraceContext,
    activate,
    bind_telemetry,
    chrome_trace,
    final_snapshot,
    get_telemetry,
    read_events,
    render_prometheus,
    span_records,
    summarize_scalars,
    summarize_spans,
    telemetry_enabled,
    telemetry_session,
    validate_chrome_trace,
)


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(2.0)
        assert reg.snapshot().value("hits") == 3.0

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError):
            reg.counter("hits").inc(-1.0)

    def test_labels_partition_series(self):
        reg = MetricsRegistry()
        reg.counter("tasks", state="ok").inc()
        reg.counter("tasks", state="failed").inc(5)
        snap = reg.snapshot()
        assert snap.value("tasks", state="ok") == 1.0
        assert snap.value("tasks", state="failed") == 5.0
        assert snap.get("tasks", state="missing") is None

    def test_name_can_also_be_a_label_key(self):
        # The SPAN_SECONDS histogram labels series by `name=` — the
        # positional-only first parameter keeps that legal.
        reg = MetricsRegistry()
        reg.histogram("span_seconds", name="opt.pass").observe(0.5)
        assert reg.snapshot().count("span_seconds", name="opt.pass") == 1

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(3)
        reg.gauge("depth").set(7)
        assert reg.snapshot().value("depth") == 7.0

    def test_histogram_sum_count_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        sample = reg.snapshot().get("lat")
        assert sample.count == 3
        assert sample.value == pytest.approx(5.55)
        assert sample.bucket_counts == (1, 1, 1)  # <=0.1, <=1.0, +Inf

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError):
            reg.gauge("x")

    def test_snapshot_sorted_and_picklable(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        snap = reg.snapshot()
        assert [s.name for s in snap] == ["a", "b"]
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_snapshot_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("n", kind="mc").inc(4)
        reg.histogram("lat").observe(0.2)
        snap = reg.snapshot()
        assert RegistrySnapshot.from_json(snap.to_json()) == snap

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg in (a, b):
            reg.counter("n").inc(2)
            reg.histogram("lat").observe(0.1)
            reg.gauge("g").set(1 if reg is a else 9)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap.value("n") == 4.0
        assert snap.count("lat") == 2
        assert snap.value("g") == 9.0  # last write wins

    def test_merge_order_determinism(self):
        shards = []
        for i in range(4):
            reg = MetricsRegistry()
            reg.counter("n").inc(i + 1)
            reg.gauge("last").set(i)
            shards.append(reg.snapshot())
        merged = MetricsRegistry()
        for snap in shards:  # fixed shard order => fixed result
            merged.merge(snap)
        snap = merged.snapshot()
        assert snap.value("n") == 10.0
        assert snap.value("last") == 3.0


class TestNullBackend:
    def test_disabled_backend_is_the_shared_singleton(self):
        tele = get_telemetry()
        assert tele is NULL_TELEMETRY
        assert not telemetry_enabled()
        assert tele.span("x", a=1) is NULL_SPAN
        assert tele.counter("n") is NULL_METRIC
        assert tele.histogram("h", kind="x") is NULL_METRIC

    def test_null_objects_accept_the_full_surface(self):
        with NULL_TELEMETRY.span("x") as span:
            span.set(a=1).end()
        NULL_TELEMETRY.begin_span("y", parent_id=7).end()
        NULL_TELEMETRY.event("e", detail=1)
        NULL_TELEMETRY.counter("n").inc()
        NULL_TELEMETRY.gauge("g").set(2)
        NULL_TELEMETRY.histogram("h").observe(0.1)
        assert NULL_TELEMETRY.trace_context() is None
        assert NULL_TELEMETRY.absorb(object(), tid=3) == 0.0

    def test_disabled_session_writes_nothing(self, tmp_path):
        NULL_TELEMETRY.counter("n").inc(100)
        assert list(tmp_path.iterdir()) == []


class TestSpans:
    def test_nesting_records_parents(self):
        with telemetry_session() as tele:
            with tele.span("outer") as outer:
                with tele.span("inner"):
                    pass
        inner, = tele.finished_spans("inner")
        assert inner.parent_id == outer.span_id
        out, = tele.finished_spans("outer")
        assert out.parent_id is None
        assert out.duration >= inner.duration >= 0.0

    def test_begin_span_does_not_join_the_stack(self):
        with telemetry_session() as tele:
            open_span = tele.begin_span("loop.task")
            with tele.span("unrelated"):
                pass
            open_span.end()
        unrelated, = tele.finished_spans("unrelated")
        assert unrelated.parent_id is None  # not parented to loop.task

    def test_attrs_and_events(self):
        with telemetry_session() as tele:
            with tele.span("work", phase=1) as span:
                span.set(result="ok")
            tele.event("mark", reason="test")
        span, = tele.finished_spans("work")
        assert span.attrs == {"phase": 1, "result": "ok"}
        event, = tele.finished_events("mark")
        assert event.attrs == {"reason": "test"}

    def test_every_span_feeds_the_span_seconds_histogram(self):
        with telemetry_session() as tele:
            with tele.span("a"):
                pass
            with tele.span("a"):
                pass
        assert tele.snapshot().count(SPAN_SECONDS, name="a") == 2

    def test_end_is_idempotent(self):
        with telemetry_session() as tele:
            span = tele.begin_span("once")
            span.end()
            span.end()
        assert len(tele.finished_spans("once")) == 1


class TestActivation:
    def test_session_activates_and_restores(self):
        assert not telemetry_enabled()
        with telemetry_session() as tele:
            assert get_telemetry() is tele
            assert telemetry_enabled()
        assert get_telemetry() is NULL_TELEMETRY

    def test_same_process_nesting_is_an_error(self):
        with telemetry_session():
            with pytest.raises(TelemetryError):
                with telemetry_session():
                    pass

    def test_fork_inherited_session_is_replaced(self):
        # Simulate a fork()ed worker: the inherited parent session has a
        # foreign pid, so activating the worker session must not raise.
        with telemetry_session():
            stale = get_telemetry()
            stale.pid = stale.pid + 1  # pretend we are the child process
            worker = Telemetry.for_worker(TraceContext("t", 0))
            with activate(worker):
                assert get_telemetry() is worker
            # Nothing sane to restore: the stale copy belongs elsewhere.
            assert get_telemetry() is NULL_TELEMETRY


class TestContextBinding:
    def test_bind_overrides_resolution(self):
        session = Telemetry()
        with bind_telemetry(session):
            assert get_telemetry() is session
        assert get_telemetry() is NULL_TELEMETRY

    def test_bind_wins_over_global_activation(self):
        # The service case: a globally activated CLI session must not
        # leak into a task that carries its own bound session.
        bound = Telemetry()
        with telemetry_session() as ambient:
            with bind_telemetry(bound):
                assert get_telemetry() is bound
            assert get_telemetry() is ambient

    def test_bind_null_silences_inside_active_session(self):
        # An in-thread fallback job binds NULL so it cannot record into
        # the service's live session.
        with telemetry_session() as ambient:
            with bind_telemetry(NULL_TELEMETRY):
                assert get_telemetry() is NULL_TELEMETRY
            assert get_telemetry() is ambient

    def test_bindings_nest(self):
        outer, inner = Telemetry(), Telemetry()
        with bind_telemetry(outer):
            with bind_telemetry(inner):
                assert get_telemetry() is inner
            assert get_telemetry() is outer

    def test_threads_resolve_their_own_binding(self):
        import threading

        sessions = {name: Telemetry() for name in ("a", "b")}
        resolved = {}
        barrier = threading.Barrier(2)

        def work(name):
            with bind_telemetry(sessions[name]):
                barrier.wait()  # both bindings live simultaneously
                resolved[name] = get_telemetry()

        threads = [
            threading.Thread(target=work, args=(name,)) for name in sessions
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert resolved["a"] is sessions["a"]
        assert resolved["b"] is sessions["b"]
        # The binding never escaped its threads.
        assert get_telemetry() is NULL_TELEMETRY

    def test_asyncio_tasks_resolve_their_own_binding(self):
        import asyncio

        sessions = {name: Telemetry() for name in ("a", "b")}

        async def work(name):
            with bind_telemetry(sessions[name]):
                await asyncio.sleep(0.01)  # interleave the two tasks
                return get_telemetry()

        async def main():
            return await asyncio.gather(work("a"), work("b"))

        resolved_a, resolved_b = asyncio.run(main())
        assert resolved_a is sessions["a"]
        assert resolved_b is sessions["b"]

    def test_foreign_pid_binding_resolves_null(self):
        # A fork()ed worker inheriting a bound parent session must not
        # record into the parent's object.
        session = Telemetry()
        with bind_telemetry(session):
            session.pid = session.pid + 1  # pretend we are the child
            assert get_telemetry() is NULL_TELEMETRY


class TestWorkerAbsorption:
    def test_trace_context_is_picklable(self):
        with telemetry_session() as tele:
            with tele.span("dispatch") as span:
                ctx = tele.trace_context(parent=span)
        assert pickle.loads(pickle.dumps(ctx)) == ctx
        assert ctx.parent_span_id == span.span_id

    def test_absorb_reids_reparents_and_lanes(self):
        with telemetry_session() as tele:
            with tele.span("mc.run") as run_span:
                ctx = tele.trace_context(parent=run_span)
                worker = Telemetry.for_worker(ctx)
                with worker.span("mc.shard", shard=0):
                    with worker.span("kernel"):
                        pass
                worker.counter("mc_shards_total").inc()
                bundle = worker.export_worker()
                tele.absorb(bundle, tid=100, parent_id=ctx.parent_span_id)
        shard, = tele.finished_spans("mc.shard")
        kernel, = tele.finished_spans("kernel")
        assert shard.tid == kernel.tid == 100
        assert shard.parent_id == run_span.span_id  # root re-parented
        assert kernel.parent_id == shard.span_id  # intra-worker edge kept
        own_ids = {s.span_id for s in tele.finished_spans()}
        assert len(own_ids) == 3  # fresh ids, no collisions
        assert tele.snapshot().value("mc_shards_total") == 1.0

    def test_absorb_merges_worker_metrics_in_order(self):
        with telemetry_session() as tele:
            bundles = []
            for i in range(3):
                worker = Telemetry.for_worker(TraceContext(tele.trace_id, 0))
                worker.counter("n").inc(i + 1)
                bundles.append(worker.export_worker())
            for i, bundle in enumerate(bundles):
                tele.absorb(bundle, tid=100 + i)
        assert tele.snapshot().value("n") == 6.0


class TestTraceFile:
    def _write_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with telemetry_session(path=path) as tele:
            with tele.span("opt.flow", circuit="c17"):
                with tele.span("opt.pass"):
                    pass
            tele.event("mark")
            tele.counter("n", kind="x").inc(2)
        return path

    def test_jsonl_layout(self, tmp_path):
        path = self._write_trace(tmp_path)
        records = read_events(path)
        kinds = [r["type"] for r in records]
        assert kinds[0] == "meta"
        assert kinds[-1] == "metrics"
        assert kinds.count("span") == 2
        assert kinds.count("event") == 1
        meta = records[0]
        assert meta["clock"] == "perf_counter"
        assert meta["package"] == "repro"

    def test_reader_tolerates_torn_tail(self, tmp_path):
        path = self._write_trace(tmp_path)
        intact = len(read_events(path))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "name": "torn')  # no newline
        assert len(read_events(path)) == intact

    def test_reader_rejects_missing_file(self, tmp_path):
        with pytest.raises(TelemetryError):
            read_events(tmp_path / "absent.jsonl")

    def test_final_snapshot_recovers_metrics(self, tmp_path):
        path = self._write_trace(tmp_path)
        snap = final_snapshot(read_events(path))
        assert snap.value("n", kind="x") == 2.0
        assert snap.count(SPAN_SECONDS, name="opt.pass") == 1

    def test_chrome_trace_valid_and_complete(self, tmp_path):
        path = self._write_trace(tmp_path)
        records = read_events(path)
        payload = chrome_trace(records)
        validate_chrome_trace(payload)
        phases = [e["ph"] for e in payload["traceEvents"]]
        assert phases.count("X") == len(span_records(records))
        assert phases.count("i") == 1
        assert json.dumps(payload)  # serializable as-is

    def test_validator_rejects_non_monotone_lanes(self):
        with pytest.raises(TelemetryError):
            validate_chrome_trace({"traceEvents": [
                {"name": "a", "ts": 5.0, "dur": 1.0, "tid": 0},
                {"name": "b", "ts": 1.0, "dur": 1.0, "tid": 0},
            ]})
        with pytest.raises(TelemetryError):
            validate_chrome_trace({"traceEvents": []})

    def test_prometheus_rendering(self, tmp_path):
        path = self._write_trace(tmp_path)
        text = render_prometheus(final_snapshot(read_events(path)))
        assert '# TYPE repro_n counter' in text
        assert 'repro_n{kind="x"} 2' in text
        assert 'repro_span_seconds_bucket{name="opt.pass",le="+Inf"} 1' in text

    def test_summaries(self, tmp_path):
        path = self._write_trace(tmp_path)
        records = read_events(path)
        rows = summarize_spans(records)
        assert [row[0] for row in rows] == ["opt.flow", "opt.pass"]
        assert rows[0][1] == 1  # count
        scalars = summarize_scalars(final_snapshot(records))
        assert ("n", {"kind": "x"}, 2.0) in scalars
