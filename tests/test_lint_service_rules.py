"""The session-discipline rule (RPR707) on fixture packages."""

import textwrap
from pathlib import Path

from repro.lint import LintContext, run_lint


def lint_sessions(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, source in {"__init__.py": "", **files}.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint(LintContext(source_root=root), passes=("artifacts",))


def by_code(report, code):
    return [f for f in report.findings if f.code == code]


class TestGlobalAccessInServicePackage:
    def test_get_telemetry_in_service_module_flagged(self, tmp_path):
        report = lint_sessions(tmp_path, {
            "service/__init__.py": "",
            "service/handlers.py": """
                from repro.telemetry import get_telemetry

                def handle():
                    tele = get_telemetry()
                    return tele
            """,
        })
        [finding] = by_code(report, "RPR707")
        assert finding.location == "pkg/service/handlers.py:5"
        assert "get_telemetry()" in finding.message
        assert "SessionContext" in finding.message

    def test_activate_and_session_entry_points_flagged(self, tmp_path):
        report = lint_sessions(tmp_path, {
            "service/__init__.py": "",
            "service/worker.py": """
                from repro import telemetry

                def run():
                    with telemetry.activate(object()):
                        pass
                    with telemetry.telemetry_session():
                        pass
            """,
        })
        findings = by_code(report, "RPR707")
        assert len(findings) == 2
        assert "activate()" in findings[0].message
        assert "telemetry_session()" in findings[1].message

    def test_session_context_importer_flagged_outside_service(self, tmp_path):
        # A module that imports SessionContext has the explicit
        # mechanism available — the ambient accessor is flagged even
        # outside the service package.
        report = lint_sessions(tmp_path, {
            "runner.py": """
                from repro.service.context import SessionContext
                from repro.telemetry import get_telemetry

                def run(ctx: SessionContext):
                    return get_telemetry()
            """,
        })
        assert len(by_code(report, "RPR707")) == 1

    def test_inline_suppression_honored(self, tmp_path):
        report = lint_sessions(tmp_path, {
            "service/__init__.py": "",
            "service/shim.py": """
                from repro.telemetry import get_telemetry

                def bridge():
                    return get_telemetry()  # lint: ignore[RPR707] CLI boundary shim
            """,
        })
        [finding] = by_code(report, "RPR707")
        assert finding.suppressed
        assert "CLI boundary shim" in finding.justification


class TestOutOfScope:
    def test_cli_module_without_session_context_unflagged(self, tmp_path):
        report = lint_sessions(tmp_path, {
            "cli.py": """
                from repro.telemetry import get_telemetry, telemetry_session

                def command():
                    with telemetry_session():
                        return get_telemetry()
            """,
        })
        assert by_code(report, "RPR707") == []

    def test_bind_based_service_code_unflagged(self, tmp_path):
        report = lint_sessions(tmp_path, {
            "service/__init__.py": "",
            "service/executor.py": """
                from repro.service.context import SessionContext

                def run(ctx: SessionContext):
                    with ctx.bind():
                        return ctx.telemetry
            """,
        })
        assert by_code(report, "RPR707") == []


class TestOwnTree:
    def test_repro_service_package_is_clean(self):
        """The shipped service subsystem obeys its own rule."""
        import repro

        root = Path(repro.__file__).parent
        report = run_lint(
            LintContext(source_root=root), passes=("artifacts",)
        )
        violations = [
            f for f in report.findings
            if f.code == "RPR707" and not f.suppressed
        ]
        assert violations == []
