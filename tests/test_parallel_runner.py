"""Runner semantics: shard order, jobs knob, graceful degradation."""

import os

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.parallel import (
    ParallelExecutionWarning,
    SampleShardPlan,
    WORKER_STARTUP_SECONDS,
    resolve_n_jobs,
    run_sharded,
)


def shard_mean(shard):
    """Module-level (picklable) task: mean of the shard's own draws."""
    return float(shard.rng().standard_normal(shard.n_samples).mean())


def shard_identity(shard):
    """Picklable task returning the shard's slice bounds."""
    return (shard.index, shard.start, shard.stop)


def shard_boom(shard):
    """Picklable task that always fails, in workers and in-process."""
    raise ValueError(f"shard {shard.index} exploded")


PLAN = SampleShardPlan.build(n_samples=700, seed=13, shard_size=100)


class TestResolveNJobs:
    def test_positive_passthrough(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(7) == 7

    def test_zero_means_all_cpus(self):
        assert resolve_n_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ParallelError, match="n_jobs"):
            resolve_n_jobs(-1)


class TestRunSharded:
    def test_serial_results_in_shard_order(self):
        out = run_sharded(shard_identity, PLAN, n_jobs=1)
        assert out == [(i, i * 100, (i + 1) * 100) for i in range(7)]

    def test_parallel_matches_serial_bitwise(self):
        serial = run_sharded(shard_mean, PLAN, n_jobs=1)
        parallel = run_sharded(shard_mean, PLAN, n_jobs=2)
        assert parallel == serial

    def test_parallel_preserves_shard_order(self):
        out = run_sharded(shard_identity, PLAN, n_jobs=3)
        assert out == [(i, i * 100, (i + 1) * 100) for i in range(7)]

    def test_workers_capped_by_shard_count(self):
        plan = SampleShardPlan.build(n_samples=5, seed=0, shard_size=5)
        # One shard -> serial path even at n_jobs=8; no pool, no warning.
        assert run_sharded(shard_identity, plan, n_jobs=8) == [(0, 0, 5)]

    def test_unpicklable_task_degrades_with_warning(self):
        reference = run_sharded(shard_mean, PLAN, n_jobs=1)

        def closure(shard):  # nested functions cannot pickle
            return shard_mean(shard)

        with pytest.warns(ParallelExecutionWarning, match="in-process"):
            out = run_sharded(closure, PLAN, n_jobs=2)
        assert out == reference

    def test_task_errors_still_raise_after_fallback(self):
        # A deterministic task failure is not a pool failure: the fallback
        # re-runs in-process and the original error surfaces.
        with pytest.raises(ValueError, match="exploded"):
            run_sharded(shard_boom, PLAN, n_jobs=1)
        with pytest.warns(ParallelExecutionWarning):
            with pytest.raises(ValueError, match="exploded"):
                run_sharded(shard_boom, PLAN, n_jobs=2)

    def test_negative_jobs_rejected_before_running(self):
        with pytest.raises(ParallelError, match="n_jobs"):
            run_sharded(shard_identity, PLAN, n_jobs=-2)

    def test_results_feed_numpy_reduction(self):
        means = np.array(run_sharded(shard_mean, PLAN, n_jobs=1))
        assert means.shape == (7,)
        assert np.all(np.isfinite(means))


class TestWorkerStartupMetric:
    def test_pooled_run_observes_one_startup_per_shard(self):
        from repro.telemetry import telemetry_session

        with telemetry_session() as tele:
            run_sharded(shard_mean, PLAN, n_jobs=2)
            snap = tele.snapshot()
        assert snap.count(WORKER_STARTUP_SECONDS) == PLAN.n_shards
        assert snap.value(WORKER_STARTUP_SECONDS) >= 0.0

    def test_serial_run_observes_nothing(self):
        from repro.telemetry import telemetry_session

        with telemetry_session() as tele:
            run_sharded(shard_mean, PLAN, n_jobs=1)
            snap = tele.snapshot()
        assert snap.count(WORKER_STARTUP_SECONDS) == 0
