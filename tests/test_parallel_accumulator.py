"""Property tests: shard-merge statistics == single-shot statistics.

The reduction layer's whole contract is that partitioning the samples
into shards — any partition, merged in any order — reproduces the
single-shot moments to 1e-12 relative and the quantiles exactly (the
sorted union is the same multiset).  Hypothesis drives the partitions.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParallelError
from repro.parallel import (
    SampleStatistics,
    ShardStats,
    StreamingMoments,
    merge_shard_stats,
)

# Bounded, finite floats: the 1e-12 contract is about merge error, not
# about catastrophic cancellation baked into the inputs themselves.
finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

# A run split into shards: lists of lists, empty shards allowed.
sharded_values = st.lists(
    st.lists(finite_floats, min_size=0, max_size=40), min_size=1, max_size=8
)


def _scale(values: np.ndarray) -> float:
    """Magnitude floor for relative comparisons."""
    return max(1.0, float(np.abs(values).max(initial=0.0)))


def _merged(shards, order):
    return merge_shard_stats(
        ShardStats.from_values(np.asarray(shards[i], dtype=float)) for i in order
    )


@given(shards=sharded_values, data=st.data())
@settings(max_examples=200, deadline=None)
def test_any_partition_any_order_matches_single_shot(shards, data):
    order = data.draw(st.permutations(range(len(shards))))
    merged = _merged(shards, order)
    flat = np.concatenate([np.asarray(s, dtype=float) for s in shards])
    single = StreamingMoments.from_values(flat)

    assert merged.count == single.count == flat.size
    if flat.size == 0:
        return
    scale = _scale(flat)
    assert abs(merged.mean - single.mean) <= 1e-12 * scale
    assert merged.moments.minimum == flat.min()
    assert merged.moments.maximum == flat.max()
    if flat.size >= 2:
        assert abs(merged.variance - single.variance) <= 1e-12 * scale**2
    else:
        assert math.isnan(merged.variance)
    # Quantiles see the identical sorted multiset, so they are exact.
    for q in (0.0, 0.25, 0.5, 0.95, 1.0):
        assert merged.quantile(q) == float(np.quantile(flat, q))


@given(shards=sharded_values)
@settings(max_examples=100, deadline=None)
def test_merge_is_order_insensitive_at_tolerance(shards):
    forward = _merged(shards, range(len(shards)))
    backward = _merged(shards, reversed(range(len(shards))))
    assert forward.count == backward.count
    if forward.count == 0:
        return
    scale = _scale(forward.sorted_values)
    assert abs(forward.mean - backward.mean) <= 1e-12 * scale
    if forward.count >= 2:
        assert abs(forward.variance - backward.variance) <= 1e-12 * scale**2
    assert np.array_equal(forward.sorted_values, backward.sorted_values)


@given(values=st.lists(finite_floats, min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_merging_with_empty_shard_is_identity(values):
    arr = np.asarray(values, dtype=float)
    alone = StreamingMoments.from_values(arr)
    empty = StreamingMoments()
    assert alone.merge(empty) == alone
    assert empty.merge(alone) == alone


def test_single_sample_shards():
    parts = [ShardStats.from_values(np.array([v])) for v in (3.0, 1.0, 2.0)]
    merged = merge_shard_stats(parts)
    assert merged.count == 3
    assert merged.mean == pytest.approx(2.0)
    assert merged.variance == pytest.approx(1.0)
    assert np.array_equal(merged.sorted_values, [1.0, 2.0, 3.0])

    one = merge_shard_stats(parts[:1])
    assert one.count == 1
    assert one.mean == 3.0
    assert math.isnan(one.variance)
    assert math.isnan(one.std)


def test_empty_statistics_guard_rails():
    empty = merge_shard_stats([])
    assert empty.count == 0
    assert empty.sorted_values.size == 0
    with pytest.raises(ParallelError, match="no samples"):
        empty.quantile(0.5)
    with pytest.raises(ParallelError, match="no samples"):
        empty.fraction_below(0.0)


def test_quantile_domain_checked():
    stats = merge_shard_stats([ShardStats.from_values(np.arange(5.0))])
    with pytest.raises(ParallelError, match="quantile"):
        stats.quantile(1.5)
    with pytest.raises(ParallelError, match="quantile"):
        stats.quantile(-0.1)


def test_fraction_below_is_inclusive_ecdf():
    stats = merge_shard_stats([ShardStats.from_values(np.array([1.0, 2.0, 3.0, 4.0]))])
    assert stats.fraction_below(0.5) == 0.0
    assert stats.fraction_below(2.0) == 0.5
    assert stats.fraction_below(2.5) == 0.5
    assert stats.fraction_below(4.0) == 1.0


def test_sample_statistics_is_reconstructible():
    values = np.linspace(-3.0, 5.0, 17)
    stats = merge_shard_stats(
        [ShardStats.from_values(values[:5]), ShardStats.from_values(values[5:])]
    )
    assert isinstance(stats, SampleStatistics)
    assert stats.std == pytest.approx(float(values.std(ddof=1)), rel=1e-12)
    assert stats.quantile(0.5) == pytest.approx(float(np.median(values)))
