"""Unit-conversion helpers: round trips and scale factors."""

import math

import pytest

from repro import units


def test_nm_scale():
    assert units.nm(100.0) == pytest.approx(1e-7)


def test_um_scale():
    assert units.um(1.0) == pytest.approx(1e-6)


def test_mm_scale():
    assert units.mm(2.0) == pytest.approx(2e-3)


def test_ps_scale():
    assert units.ps(40.0) == pytest.approx(4e-11)


def test_ns_scale():
    assert units.ns(1.5) == pytest.approx(1.5e-9)


def test_capacitance_scales():
    assert units.fF(3.0) == pytest.approx(3e-15)
    assert units.pF(1.0) == pytest.approx(1e-12)


def test_current_scales():
    assert units.nA(20.0) == pytest.approx(2e-8)
    assert units.uA(5.0) == pytest.approx(5e-6)


def test_power_scales():
    assert units.nW(1.0) == pytest.approx(1e-9)
    assert units.uW(1.0) == pytest.approx(1e-6)
    assert units.mW(1.0) == pytest.approx(1e-3)


def test_voltage_scale():
    assert units.mV(250.0) == pytest.approx(0.25)


@pytest.mark.parametrize(
    "into,outof,value",
    [
        (units.nm, units.to_nm, 123.4),
        (units.um, units.to_um, 0.9),
        (units.ps, units.to_ps, 37.5),
        (units.ns, units.to_ns, 2.25),
        (units.fF, units.to_fF, 14.0),
        (units.nA, units.to_nA, 88.0),
        (units.uA, units.to_uA, 3.0),
        (units.nW, units.to_nW, 55.0),
        (units.uW, units.to_uW, 7.0),
        (units.mW, units.to_mW, 1.2),
        (units.mV, units.to_mV, 310.0),
    ],
)
def test_round_trips(into, outof, value):
    assert outof(into(value)) == pytest.approx(value, rel=1e-12)


def test_composition_nm_to_um():
    assert units.to_um(units.nm(1000.0)) == pytest.approx(1.0)


def test_helpers_accept_integers():
    assert units.nm(100) == units.nm(100.0)
    assert math.isclose(units.to_ps(units.ps(1)), 1.0)
