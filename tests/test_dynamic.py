"""Dynamic (switching) power model."""

import numpy as np
import pytest

from repro.errors import PowerError
from repro.power import analyze_dynamic_power, switching_activities
from repro.timing import TimingView


class TestDynamicPower:
    def test_nonnegative_per_gate(self, c432):
        # Deep logic cones can saturate a net's probability to exactly 0/1
        # under the independence model, giving zero activity — so gates are
        # non-negative, and the circuit total strictly positive.
        dp = analyze_dynamic_power(c432)
        assert dp.powers.shape == (c432.n_gates,)
        assert np.all(dp.powers >= 0)
        assert dp.total > 0

    def test_linear_in_frequency(self, c432):
        slow = analyze_dynamic_power(c432, frequency=1e8)
        fast = analyze_dynamic_power(c432, frequency=1e9)
        assert fast.total == pytest.approx(10 * slow.total, rel=1e-9)

    def test_rejects_bad_frequency(self, c432):
        with pytest.raises(PowerError):
            analyze_dynamic_power(c432, frequency=0.0)

    def test_upsizing_increases_dynamic_power(self, c432):
        base = analyze_dynamic_power(c432).total
        c432.set_uniform(size=4.0)
        upsized = analyze_dynamic_power(c432).total
        assert upsized > 2 * base

    def test_formula_on_single_gate(self, lib, c17):
        view = TimingView(c17)
        acts = switching_activities(c17)
        dp = analyze_dynamic_power(view, frequency=1e9, activities=acts)
        idx = 0
        gate = view.gates[idx]
        cap = view.load_cap_of(idx) + view.cells[idx].parasitic_cap(gate.size)
        vdd = lib.tech.vdd
        expected = 0.5 * acts[gate.name] * cap * vdd * vdd * 1e9
        assert dp.powers[idx] == pytest.approx(expected)

    def test_custom_activities_respected(self, c17):
        zeroed = {net: 0.0 for net in
                  list(c17.inputs) + [g.name for g in c17.gates()]}
        dp = analyze_dynamic_power(c17, activities=zeroed)
        assert dp.total == 0.0

    def test_vth_does_not_change_dynamic_power(self, c432):
        from repro.tech import VthClass

        base = analyze_dynamic_power(c432).total
        c432.set_uniform(vth=VthClass.HIGH)
        after = analyze_dynamic_power(c432).total
        assert after == pytest.approx(base, rel=1e-12)
