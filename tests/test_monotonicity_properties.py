"""Hypothesis monotonicity properties tying timing and power together.

These are the physical sanity laws any implementation must obey for every
circuit and every gate: raising a threshold never speeds the circuit up
and never increases leakage; downsizing never increases leakage; loosening
a constraint never worsens an analysis result.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import make_benchmark
from repro.power import analyze_leakage
from repro.tech import Library, VthClass, get_technology
from repro.timing import run_sta

LIB = Library(get_technology("ptm100"))
CIRCUIT = make_benchmark("c432", LIB)
N = CIRCUIT.n_gates

gate_indices = st.integers(0, N - 1)


def _reset():
    CIRCUIT.set_uniform(size=1.0, vth=VthClass.LOW)


@given(idx=gate_indices)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_vth_swap_never_speeds_circuit(idx):
    _reset()
    before = run_sta(CIRCUIT).circuit_delay
    CIRCUIT.indexed_gates()[idx].vth = VthClass.HIGH
    after = run_sta(CIRCUIT).circuit_delay
    assert after >= before * (1 - 1e-12)


@given(idx=gate_indices)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_vth_swap_always_cuts_leakage(idx):
    _reset()
    before = analyze_leakage(CIRCUIT).total_power
    CIRCUIT.indexed_gates()[idx].vth = VthClass.HIGH
    after = analyze_leakage(CIRCUIT).total_power
    assert after < before


@given(idx=gate_indices, size=st.sampled_from([2.0, 4.0, 8.0]))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_upsizing_any_gate_increases_leakage(idx, size):
    _reset()
    before = analyze_leakage(CIRCUIT).total_power
    CIRCUIT.indexed_gates()[idx].size = size
    after = analyze_leakage(CIRCUIT).total_power
    assert after > before


@given(idx=gate_indices)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_slack_never_negative_at_own_circuit_delay(idx):
    # With the target set to the computed circuit delay, no slack can be
    # negative regardless of the implementation point.
    _reset()
    CIRCUIT.indexed_gates()[idx].vth = VthClass.HIGH
    sta = run_sta(CIRCUIT)
    assert sta.worst_slack >= -1e-15


@given(
    idx=gate_indices,
    factor=st.floats(1.05, 2.0),
)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_looser_target_never_reduces_slack(idx, factor):
    _reset()
    CIRCUIT.indexed_gates()[idx].size = 2.0
    base = run_sta(CIRCUIT)
    loose = run_sta(CIRCUIT, target_delay=base.circuit_delay * factor)
    assert (loose.slacks >= base.slacks - 1e-15).all()


@pytest.fixture(autouse=True)
def _restore_circuit_state():
    yield
    _reset()
