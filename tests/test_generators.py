"""Structured and random circuit generators."""

import itertools

import pytest

from repro.circuit import (
    array_multiplier,
    parity_tree,
    random_logic,
    ripple_carry_adder,
)
from repro.errors import NetlistError


def simulate(circuit, input_values):
    values = dict(input_values)
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        cell = circuit.cell_of(gate)
        values[name] = cell.evaluate([values[f] for f in gate.fanins])
    return values


class TestRippleCarryAdder:
    @pytest.mark.parametrize("bits", [1, 2, 4])
    def test_adds_correctly(self, lib, bits):
        adder = ripple_carry_adder(lib, bits)
        for a in range(2**bits):
            for b in range(2**bits):
                for cin in (0, 1):
                    assign = {"cin": bool(cin)}
                    for i in range(bits):
                        assign[f"a{i}"] = bool((a >> i) & 1)
                        assign[f"b{i}"] = bool((b >> i) & 1)
                    v = simulate(adder, assign)
                    total = 0
                    for i, out in enumerate(adder.outputs):
                        total |= int(v[out]) << i
                    assert total == a + b + cin, (a, b, cin)

    def test_structure(self, lib):
        adder = ripple_carry_adder(lib, 8)
        assert len(adder.inputs) == 17
        assert len(adder.outputs) == 9
        assert adder.n_gates == 8 * 5

    def test_rejects_zero_bits(self, lib):
        with pytest.raises(NetlistError):
            ripple_carry_adder(lib, 0)


class TestArrayMultiplier:
    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_multiplies_correctly(self, lib, bits):
        mult = array_multiplier(lib, bits)
        assert len(mult.outputs) == 2 * bits
        for a in range(2**bits):
            for b in range(2**bits):
                assign = {}
                for i in range(bits):
                    assign[f"a{i}"] = bool((a >> i) & 1)
                    assign[f"b{i}"] = bool((b >> i) & 1)
                v = simulate(mult, assign)
                product = 0
                for i, out in enumerate(mult.outputs):
                    product |= int(v[out]) << i
                assert product == a * b, (a, b)

    def test_rejects_single_bit(self, lib):
        with pytest.raises(NetlistError):
            array_multiplier(lib, 1)

    def test_c6288_scale(self, lib):
        mult = array_multiplier(lib, 16)
        assert 1000 < mult.n_gates < 3000
        assert mult.depth > 50  # long diagonal carry chains


class TestParityTree:
    @pytest.mark.parametrize("bits", [2, 3, 5, 8])
    def test_parity_correct(self, lib, bits):
        tree = parity_tree(lib, bits)
        for bits_vec in itertools.product((False, True), repeat=bits):
            assign = {f"x{i}": v for i, v in enumerate(bits_vec)}
            v = simulate(tree, assign)
            assert v[tree.outputs[0]] == (sum(bits_vec) % 2 == 1)

    def test_balanced_depth(self, lib):
        tree = parity_tree(lib, 16)
        assert tree.depth == 4


class TestRandomLogic:
    def test_deterministic_per_seed(self, lib):
        a = random_logic(lib, "r", 10, 4, 60, 8, seed=5)
        b = random_logic(lib, "r", 10, 4, 60, 8, seed=5)
        assert [g.cell_name for g in a.gates()] == [g.cell_name for g in b.gates()]
        assert [g.fanins for g in a.gates()] == [g.fanins for g in b.gates()]

    def test_different_seed_differs(self, lib):
        a = random_logic(lib, "r", 10, 4, 60, 8, seed=5)
        b = random_logic(lib, "r", 10, 4, 60, 8, seed=6)
        assert [g.fanins for g in a.gates()] != [g.fanins for g in b.gates()]

    def test_profile_respected(self, lib):
        c = random_logic(lib, "r", 20, 6, 150, 12, seed=1)
        assert len(c.inputs) == 20
        assert len(c.outputs) == 6
        # Folding adds a few gates; stay within 25%.
        assert 150 <= c.n_gates <= 190
        assert 12 <= c.depth <= 12 + 6

    def test_all_inputs_used(self, lib):
        c = random_logic(lib, "r", 25, 5, 120, 10, seed=3)
        for pi in c.inputs:
            assert c.fanout_of(pi), f"input {pi} unused"

    def test_no_dangling_internal_gates(self, lib):
        c = random_logic(lib, "r", 12, 4, 80, 9, seed=7)
        outputs = set(c.outputs)
        for gate in c.gates():
            assert c.fanout_of(gate.name) or gate.name in outputs

    def test_invalid_profile_rejected(self, lib):
        with pytest.raises(NetlistError):
            random_logic(lib, "r", 0, 4, 60, 8, seed=5)
        with pytest.raises(NetlistError):
            random_logic(lib, "r", 10, 4, 5, 8, seed=5)  # depth > gates
