"""Scheduler semantics: caching, isolation, retry, resume, reproducibility.

The crash-safety contract under test (ISSUE acceptance): after an
injected mid-campaign failure, ``resume`` completes the campaign by
re-executing *only* the missing tasks, and every artifact is bitwise
identical to an uninterrupted run's.
"""

import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignRunner,
    CampaignSpec,
    EventLedger,
    INJECT_FAIL_ENV,
    run_campaign,
    task_states,
)


def spec_of(**overrides):
    defaults = dict(
        name="sched-test", benchmarks=("c17",), mc_samples=0,
        retries=1, retry_backoff=0.0,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def artifact_bytes(store):
    return {
        key: store.artifact_path(key).read_bytes() for key in store.keys()
    }


class TestHappyPath:
    def test_full_run_all_succeed(self, tmp_path):
        result = run_campaign(spec_of(mc_samples=25), tmp_path)
        assert result.ok
        assert result.executed == result.total == 6
        assert result.report_key is not None
        states = {o.task_id: o.state for o in result.outcomes}
        assert set(states.values()) == {"succeeded"}

    def test_rerun_is_all_cache_hits(self, tmp_path):
        spec = spec_of()
        run_campaign(spec, tmp_path)
        again = run_campaign(spec, tmp_path)
        assert again.executed == 0
        assert again.cached == again.total
        assert again.cache_hit_rate == 1.0

    def test_force_reexecutes_everything(self, tmp_path):
        spec = spec_of()
        run_campaign(spec, tmp_path)
        forced = run_campaign(spec, tmp_path, force=True)
        assert forced.executed == forced.total

    def test_report_artifact_contains_table(self, tmp_path):
        result = run_campaign(spec_of(), tmp_path)
        store = ArtifactStore(tmp_path)
        report = store.get(result.report_key)
        assert "c17" in report["table"]
        assert report["missing"] == []
        [row] = report["rows"]
        assert row["extra_savings"] > 0  # the paper's headline claim

    def test_ledger_records_the_run(self, tmp_path):
        spec = spec_of()
        run_campaign(spec, tmp_path)
        ledger = EventLedger(ArtifactStore(tmp_path).ledger_path(spec.name))
        events = [e["event"] for e in ledger.replay()]
        assert events[0] == "run_started"
        assert events[-1] == "run_finished"
        assert task_states(ledger.latest_run())["report"] == "succeeded"


class TestFailureIsolation:
    def test_failed_task_skips_dependents_not_siblings(self, tmp_path, monkeypatch):
        monkeypatch.setenv(INJECT_FAIL_ENV, "y0.95:stat")
        result = run_campaign(spec_of(mc_samples=25), tmp_path)
        states = {o.task_id: o.state for o in result.outcomes}
        assert states["opt:c17:m1.1:y0.95:stat"] == "failed"
        assert states["mc:c17:m1.1:y0.95:stat"] == "skipped"
        # The deterministic branch is unaffected.
        assert states["opt:c17:m1.1:det"] == "succeeded"
        assert states["mc:c17:m1.1:det"] == "succeeded"
        assert not result.ok

    def test_best_effort_report_survives_partial_failure(self, tmp_path, monkeypatch):
        monkeypatch.setenv(INJECT_FAIL_ENV, "y0.95:stat")
        result = run_campaign(spec_of(), tmp_path)
        assert result.outcome("report").state == "succeeded"
        report = ArtifactStore(tmp_path).get(result.report_key)
        [row] = report["rows"]
        assert "det_mean_leakage" in row
        assert "stat_mean_leakage" not in row  # isolated, not fabricated

    def test_partial_report_key_differs_from_complete(self, tmp_path, monkeypatch):
        spec = spec_of()
        monkeypatch.setenv(INJECT_FAIL_ENV, "y0.95:stat")
        partial = run_campaign(spec, tmp_path)
        monkeypatch.delenv(INJECT_FAIL_ENV)
        complete = run_campaign(spec, tmp_path)
        assert partial.report_key != complete.report_key
        assert complete.ok

    def test_error_message_lands_in_outcome(self, tmp_path, monkeypatch):
        monkeypatch.setenv(INJECT_FAIL_ENV, "analyze")
        result = run_campaign(spec_of(), tmp_path)
        outcome = result.outcome("analyze:c17")
        assert outcome.state == "failed"
        assert "injected failure" in outcome.error


class TestRetry:
    def test_transient_failure_recovers_on_retry(self, tmp_path, monkeypatch):
        monkeypatch.setenv(INJECT_FAIL_ENV, "analyze:c17@1")
        result = run_campaign(spec_of(retries=2), tmp_path)
        assert result.ok
        assert result.outcome("analyze:c17").attempts == 2

    def test_retries_exhausted_fails(self, tmp_path, monkeypatch):
        monkeypatch.setenv(INJECT_FAIL_ENV, "analyze:c17@5")
        result = run_campaign(spec_of(retries=1), tmp_path)
        assert result.outcome("analyze:c17").state == "failed"
        assert result.outcome("analyze:c17").attempts == 2


class TestResume:
    def test_resume_executes_only_missing_tasks_bitwise(self, tmp_path, monkeypatch):
        spec = spec_of(mc_samples=25)
        baseline_root = tmp_path / "baseline"
        crashed_root = tmp_path / "crashed"
        run_campaign(spec, baseline_root)

        monkeypatch.setenv(INJECT_FAIL_ENV, "y0.95:stat")
        run_campaign(spec, crashed_root)
        monkeypatch.delenv(INJECT_FAIL_ENV)

        resumed = run_campaign(spec, crashed_root)
        assert resumed.ok
        states = {o.task_id: o.state for o in resumed.outcomes}
        # Finished work replays as cache hits; only the failed subtree
        # (and the aggregate) re-executes.
        assert states["analyze:c17"] == "cached"
        assert states["opt:c17:m1.1:det"] == "cached"
        assert states["mc:c17:m1.1:det"] == "cached"
        assert states["opt:c17:m1.1:y0.95:stat"] == "succeeded"
        assert states["mc:c17:m1.1:y0.95:stat"] == "succeeded"
        assert states["report"] == "succeeded"

        baseline = artifact_bytes(ArtifactStore(baseline_root))
        crashed = artifact_bytes(ArtifactStore(crashed_root))
        # Every baseline artifact exists in the resumed store, bitwise
        # identical (the crashed store additionally holds the partial
        # report the failed run aggregated).
        for key, blob in baseline.items():
            assert crashed[key] == blob

    @pytest.mark.parametrize("estimator", ["plain", "isle", "sobol", "cv"])
    def test_resume_invariance_per_estimator(
        self, tmp_path, monkeypatch, estimator
    ):
        """Every yield estimator survives a crash/resume cycle bitwise.

        The MC validation stage re-executes from its shard plan on
        resume; since the plan and the per-shard streams are pure
        functions of the spec, the resumed artifact must equal the
        uninterrupted run's byte for byte — for *every* estimator, not
        just the historical plain path.
        """
        spec = spec_of(mc_samples=64, mc_estimator=estimator)
        baseline_root = tmp_path / "baseline"
        crashed_root = tmp_path / "crashed"
        run_campaign(spec, baseline_root)

        monkeypatch.setenv(INJECT_FAIL_ENV, "mc")
        run_campaign(spec, crashed_root)
        monkeypatch.delenv(INJECT_FAIL_ENV)

        resumed = run_campaign(spec, crashed_root)
        assert resumed.ok
        baseline = artifact_bytes(ArtifactStore(baseline_root))
        crashed = artifact_bytes(ArtifactStore(crashed_root))
        for key, blob in baseline.items():
            assert crashed[key] == blob

    def test_estimator_is_part_of_the_fingerprint(self):
        plain = spec_of(mc_samples=64, mc_estimator="plain")
        isle = spec_of(mc_samples=64, mc_estimator="isle")
        assert plain.fingerprint() != isle.fingerprint()

    def test_double_crash_then_resume(self, tmp_path, monkeypatch):
        spec = spec_of()
        monkeypatch.setenv(INJECT_FAIL_ENV, "det")
        run_campaign(spec, tmp_path)
        monkeypatch.setenv(INJECT_FAIL_ENV, "stat")
        run_campaign(spec, tmp_path)
        monkeypatch.delenv(INJECT_FAIL_ENV)
        final = run_campaign(spec, tmp_path)
        assert final.ok
        assert final.outcome("analyze:c17").state == "cached"


class TestParallel:
    def test_parallel_run_matches_serial_bitwise(self, tmp_path):
        spec = spec_of(mc_samples=25)
        serial_root = tmp_path / "serial"
        parallel_root = tmp_path / "parallel"
        run_campaign(spec, serial_root)
        result = run_campaign(spec, parallel_root, n_jobs=2)
        assert result.ok
        assert artifact_bytes(ArtifactStore(serial_root)) == artifact_bytes(
            ArtifactStore(parallel_root)
        )


class TestRunnerObject:
    def test_unknown_outcome_lookup_raises(self, tmp_path):
        from repro.errors import CampaignError

        result = run_campaign(spec_of(), tmp_path)
        with pytest.raises(CampaignError):
            result.outcome("nope")

    def test_summary_shape(self, tmp_path):
        summary = run_campaign(spec_of(), tmp_path).summary()
        assert summary["ok"] is True
        assert summary["total"] == summary["executed"]
        assert summary["campaign"] == "sched-test"
        assert len(summary["spec_fingerprint"]) == 64

    def test_runner_reuses_existing_ledger_path(self, tmp_path):
        spec = spec_of()
        store = ArtifactStore(tmp_path)
        runner = CampaignRunner(spec, store)
        runner.run()
        assert runner.ledger.path == store.ledger_path(spec.name)
        assert runner.ledger.exists()
