"""Content-addressed artifact store: atomic, provenance-carrying, collectable."""

import json

import pytest

from repro.campaign import ArtifactStore
from repro.errors import CampaignError

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestRoundtrip:
    def test_put_get(self, store):
        store.put(KEY_A, {"value": 1.5, "rows": [1, 2]})
        assert store.get(KEY_A) == {"value": 1.5, "rows": [1, 2]}

    def test_has(self, store):
        assert not store.has(KEY_A)
        store.put(KEY_A, {"v": 1})
        assert store.has(KEY_A)

    def test_sharded_layout(self, store):
        store.put(KEY_A, {"v": 1})
        assert store.artifact_path(KEY_A).parent.parent.name == KEY_A[:2]

    def test_keys_sorted(self, store):
        store.put(KEY_B, {})
        store.put(KEY_A, {})
        assert list(store.keys()) == [KEY_A, KEY_B]

    def test_get_missing_raises(self, store):
        with pytest.raises(CampaignError):
            store.get(KEY_A)

    def test_path_traversal_rejected(self, store):
        with pytest.raises(CampaignError):
            store.put("../evil", {})

    def test_rewrite_is_bitwise_identical(self, store):
        store.put(KEY_A, {"b": 2, "a": 1})
        first = store.artifact_path(KEY_A).read_bytes()
        store.put(KEY_A, {"a": 1, "b": 2})
        assert store.artifact_path(KEY_A).read_bytes() == first


class TestAtomicity:
    def test_no_tmp_leftovers(self, store):
        for i in range(5):
            store.put(f"{i:064d}", {"i": i})
        leftovers = [
            p for p in store.root.rglob("*") if p.is_file() and ".tmp" in p.name
        ]
        assert leftovers == []

    def test_artifact_lands_after_meta(self, store):
        # `has` probes the artifact file, which put() writes *last* — so a
        # visible key always has its meta sidecar already in place.
        store.put(KEY_A, {"v": 1})
        assert store.meta_path(KEY_A).exists()
        assert store.artifact_path(KEY_A).exists()


class TestMeta:
    def test_meta_carries_provenance_and_extra(self, store):
        store.put(KEY_A, {"v": 1}, meta={"task": "opt:c17"})
        meta = store.meta(KEY_A)
        assert meta["key"] == KEY_A
        assert meta["task"] == "opt:c17"
        assert meta["provenance"]["package"] == "repro"
        assert meta["provenance"]["version"]

    def test_meta_absent_for_missing_key(self, store):
        assert store.meta(KEY_A) is None

    def test_artifact_json_has_no_wallclock(self, store):
        store.put(KEY_A, {"v": 1}, meta={"elapsed_seconds": 1.23})
        raw = json.loads(store.artifact_path(KEY_A).read_text())
        assert raw == {"v": 1}


class TestGC:
    def test_gc_keeps_live_removes_dead(self, store):
        store.put(KEY_A, {"v": 1})
        store.put(KEY_B, {"v": 2})
        stats, removed = store.gc(live={KEY_A})
        assert removed == (KEY_B,)
        assert stats.removed == 1 and stats.kept == 1
        assert stats.bytes_freed > 0
        assert store.has(KEY_A) and not store.has(KEY_B)

    def test_gc_dry_run_removes_nothing(self, store):
        store.put(KEY_A, {"v": 1})
        stats, removed = store.gc(live=set(), dry_run=True)
        assert removed == (KEY_A,)
        assert stats.removed == 1
        assert store.has(KEY_A)

    def test_gc_prunes_empty_prefix_dirs(self, store):
        store.put(KEY_C, {"v": 3})
        prefix_dir = store.artifact_path(KEY_C).parent.parent
        store.gc(live=set())
        assert not prefix_dir.exists()
