"""The ``repro campaign`` CLI and the ``repro info`` provenance block."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def store(tmp_path):
    return str(tmp_path / "store")


def run_cli(*argv):
    return main(list(argv))


def smoke_args(store, *extra):
    return (
        "campaign", *extra, "paper-sweep-smoke",
        "--store", store, "--benchmarks", "c17", "--mc-samples", "0",
    )


class TestRun:
    def test_run_prints_outcomes_and_table(self, store, capsys):
        code = run_cli(*smoke_args(store, "run"))
        out = capsys.readouterr().out
        assert code == 0
        assert "analyze:c17" in out
        assert "deterministic vs statistical" in out
        assert "0 failed" in out

    def test_rerun_is_fully_cached(self, store, capsys):
        run_cli(*smoke_args(store, "run"))
        capsys.readouterr()
        assert run_cli(*smoke_args(store, "run")) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out
        assert "cache hit rate 100%" in out

    def test_summary_json(self, store, tmp_path, capsys):
        summary_path = tmp_path / "summary.json"
        code = run_cli(
            *smoke_args(store, "run"), "--summary-json", str(summary_path)
        )
        assert code == 0
        summary = json.loads(summary_path.read_text())
        assert summary["ok"] is True
        assert summary["executed"] == summary["total"]

    def test_failure_sets_exit_code(self, store, monkeypatch, capsys):
        from repro.campaign import INJECT_FAIL_ENV

        monkeypatch.setenv(INJECT_FAIL_ENV, "stat")
        assert run_cli(*smoke_args(store, "run")) == 1
        assert "failed" in capsys.readouterr().out

    def test_spec_file_path(self, tmp_path, capsys):
        spec_path = tmp_path / "mini.json"
        spec_path.write_text(json.dumps({"benchmarks": ["c17"]}))
        code = run_cli(
            "campaign", "run", str(spec_path), "--store", str(tmp_path / "s")
        )
        assert code == 0
        assert "mini" in capsys.readouterr().out

    def test_unknown_spec_errors(self, store, capsys):
        assert run_cli("campaign", "run", "no-such", "--store", store) == 1
        assert "unknown campaign spec" in capsys.readouterr().err


class TestStatus:
    def test_incomplete_then_complete(self, store, capsys):
        assert run_cli(*smoke_args(store, "status")) == 1
        assert "0/4 artifacts present" in capsys.readouterr().out
        run_cli(*smoke_args(store, "run"))
        capsys.readouterr()
        assert run_cli(*smoke_args(store, "status")) == 0
        out = capsys.readouterr().out
        assert "4/4 artifacts present" in out
        assert "succeeded" in out  # ledger state column


class TestResume:
    def test_resume_without_ledger_errors(self, store, capsys):
        assert run_cli(*smoke_args(store, "resume")) == 1
        assert "nothing to resume" in capsys.readouterr().err

    def test_resume_after_failure_completes(self, store, monkeypatch, capsys):
        from repro.campaign import INJECT_FAIL_ENV

        monkeypatch.setenv(INJECT_FAIL_ENV, "stat")
        run_cli(*smoke_args(store, "run"))
        monkeypatch.delenv(INJECT_FAIL_ENV)
        capsys.readouterr()
        assert run_cli(*smoke_args(store, "resume")) == 0
        out = capsys.readouterr().out
        assert "cached" in out
        assert "0 failed" in out


class TestGC:
    @pytest.fixture
    def mini_spec(self, tmp_path):
        path = tmp_path / "mini.json"
        path.write_text(json.dumps({"benchmarks": ["c17"]}))
        return str(path)

    def test_gc_dry_run_lists_dead_keeps_everything(
        self, store, mini_spec, capsys
    ):
        from repro.campaign import ArtifactStore

        run_cli("campaign", "run", mini_spec, "--store", store)
        art_store = ArtifactStore(store)
        art_store.put("f" * 64, {"stale": True})
        capsys.readouterr()
        assert run_cli(
            "campaign", "gc", mini_spec, "--store", store, "--dry-run"
        ) == 0
        out = capsys.readouterr().out
        assert "would remove 1 object(s)" in out
        assert "f" * 64 in out
        assert art_store.has("f" * 64)

    def test_gc_removes_dead_keeps_live(self, store, mini_spec, capsys):
        from repro.campaign import ArtifactStore, complete_task_keys, load_spec

        run_cli("campaign", "run", mini_spec, "--store", store)
        art_store = ArtifactStore(store)
        art_store.put("f" * 64, {"stale": True})
        assert run_cli("campaign", "gc", mini_spec, "--store", store) == 0
        assert not art_store.has("f" * 64)
        for key in complete_task_keys(load_spec(mini_spec)).values():
            assert art_store.has(key)


class TestInfoProvenance:
    def test_bare_info_prints_provenance(self, capsys):
        assert run_cli("info") == 0
        out = capsys.readouterr().out
        assert "provenance" in out
        assert "numpy" in out
        assert "repro" in out

    def test_circuit_info_appends_provenance(self, capsys):
        assert run_cli("info", "c17") == 0
        out = capsys.readouterr().out
        assert "NAND2" in out
        assert "provenance" in out
