"""Property-based tests for the importance-sampling weight math.

The ISLE weights are where a silent statistical bug would hide: a
single non-finite or negative weight corrupts the self-normalized
estimate without crashing anything.  Hypothesis sweeps the z/shift/
mixture space for the invariants the derivation promises:

* weights are finite, strictly positive, and bounded by ``1/(1-lam)``
  (the defensive-mixture guarantee — no weight blow-up anywhere);
* the log-likelihood ratio matches its definition against exact normal
  log-densities;
* a zero shift makes the proposal the nominal distribution: weights
  collapse to one and the full ISLE estimator reproduces plain MC's
  yield *exactly* (same dies, same counts).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimatorError
from repro.mcstat.isle import (
    failure_shift,
    log_likelihood_ratio,
    mixture_weights,
)
from repro.mcstat import DelayMoments

zs = st.floats(-6.0, 6.0)
shifts = st.floats(-4.0, 4.0)
lams = st.floats(0.01, 0.99)
dims = st.integers(1, 4)


def _z_matrix(flat, n, k):
    return np.array(flat[: n * k], dtype=float).reshape(n, k)


class TestWeightInvariants:
    @given(
        k=dims,
        z_flat=st.lists(zs, min_size=32, max_size=32),
        shift_flat=st.lists(shifts, min_size=4, max_size=4),
        lam=lams,
    )
    @settings(max_examples=200)
    def test_finite_positive_bounded(self, k, z_flat, shift_flat, lam):
        n = 32 // k
        z = _z_matrix(z_flat, n, k)
        shift = np.array(shift_flat[:k], dtype=float)
        w = mixture_weights(z, shift, lam)
        assert np.all(np.isfinite(w))
        assert np.all(w > 0.0)
        assert np.all(w <= 1.0 / (1.0 - lam) * (1.0 + 1e-12))

    @given(
        k=dims,
        z_flat=st.lists(zs, min_size=32, max_size=32),
        shift_flat=st.lists(shifts, min_size=4, max_size=4),
    )
    @settings(max_examples=200)
    def test_log_likelihood_ratio_matches_densities(
        self, k, z_flat, shift_flat
    ):
        n = 32 // k
        z = _z_matrix(z_flat, n, k)
        shift = np.array(shift_flat[:k], dtype=float)
        got = log_likelihood_ratio(z, shift)
        # Exact standard-normal log-density difference, row by row.
        expected = 0.5 * (
            np.sum(z * z, axis=1) - np.sum((z - shift) ** 2, axis=1)
        )
        assert np.allclose(got, expected, rtol=1e-10, atol=1e-10)

    @given(
        k=dims,
        z_flat=st.lists(zs, min_size=32, max_size=32),
        lam=lams,
    )
    @settings(max_examples=100)
    def test_zero_shift_weights_are_one(self, k, z_flat, lam):
        n = 32 // k
        z = _z_matrix(z_flat, n, k)
        w = mixture_weights(z, np.zeros(k), lam)
        assert np.allclose(w, 1.0, rtol=0.0, atol=1e-12)

    @given(lam=st.one_of(st.floats(-2.0, 0.0), st.floats(1.0, 2.0)))
    @settings(max_examples=50)
    def test_invalid_mixture_weight_rejected(self, lam):
        with pytest.raises(EstimatorError):
            mixture_weights(np.zeros((2, 1)), np.ones(1), lam)


class TestFailureShift:
    @given(
        mean=st.floats(0.5, 2.0),
        target=st.floats(0.5, 20.0),
        s0=st.floats(0.0, 1.0),
        s1=st.floats(0.0, 1.0),
        indep=st.floats(0.0, 1.0),
    )
    @settings(max_examples=200)
    def test_shift_is_clipped_and_aims_at_failure(
        self, mean, target, s0, s1, indep
    ):
        moments = DelayMoments(
            mean=mean, global_sens=np.array([s0, s1]), indep_sigma=indep
        )
        mu = failure_shift(moments, target)
        assert np.all(np.isfinite(mu))
        assert math.sqrt(float(mu @ mu)) <= 4.0 * (1.0 + 1e-12)
        # The shift moves the delay mean toward (never past the sign of)
        # the target: its projection onto the sensitivities has the same
        # sign as the slack.
        projection = float(mu @ moments.global_sens)
        slack = target - mean
        assert projection * slack >= 0.0

    def test_zero_sensitivity_gives_zero_shift(self):
        moments = DelayMoments(
            mean=1.0, global_sens=np.zeros(2), indep_sigma=0.0
        )
        assert not np.any(failure_shift(moments, 2.0))


class TestReduceToPlain:
    """Proposal == nominal -> the estimator IS plain MC on the same dies."""

    @pytest.fixture()
    def flat_oracle(self, oracle):
        # Zero global sensitivity: the FORM shift vanishes identically,
        # so ISLE's proposal equals the nominal distribution.
        return type(oracle)(gs=(0.0, 0.0), sigma_indep=0.2)

    @pytest.mark.parametrize("eta", [0.6, 0.9])
    def test_isle_equals_plain_exactly(self, flat_oracle, eta):
        target = flat_oracle.target_at(eta)
        plain = flat_oracle.run("plain", target, 2048, seed=7, shard_size=256)
        isle = flat_oracle.run("isle", target, 2048, seed=7, shard_size=256)
        # Same dies, same counts: the yield matches bitwise.  (The
        # standard errors agree algebraically but follow different
        # floating-point paths, hence the ulp-scale tolerance.)
        assert isle.timing_yield == plain.timing_yield
        assert math.isclose(
            isle.std_error, plain.std_error, rel_tol=1e-12, abs_tol=0.0
        )
