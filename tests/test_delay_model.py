"""Drive model and stage-delay arithmetic."""

import pytest

from repro.tech import (
    LN2_FACTOR,
    VthClass,
    build_drive_model,
    stage_delay,
)


@pytest.fixture
def drive_low(tech):
    return build_drive_model(tech, VthClass.LOW, 2 * tech.wmin, 4 * tech.wmin)


@pytest.fixture
def drive_high(tech):
    return build_drive_model(tech, VthClass.HIGH, 2 * tech.wmin, 4 * tech.wmin)


class TestDriveModel:
    def test_resistance_scales_inversely_with_size(self, drive_low):
        assert drive_low.resistance(2.0) == pytest.approx(
            drive_low.resistance(1.0) / 2.0
        )

    def test_high_vth_is_slower(self, drive_low, drive_high):
        assert drive_high.r_unit > drive_low.r_unit

    def test_long_channel_slows(self, drive_low):
        assert drive_low.resistance(1.0, delta_l=5e-9) > drive_low.resistance(1.0)

    def test_raised_vth_slows(self, drive_low):
        assert drive_low.resistance(1.0, delta_vth0=0.03) > drive_low.resistance(1.0)

    def test_quadratic_correction_close_to_exponential(self, drive_low):
        # The (1 + x + x^2/2) factor should track exp(x) within ~1% for
        # realistic shifts (|x| < 0.3).
        import math

        x = drive_low.d_lnr_d_deltal * 5e-9
        approx = drive_low.resistance(1.0, delta_l=5e-9) / drive_low.resistance(1.0)
        assert approx == pytest.approx(math.exp(x), rel=0.01)

    def test_sensitivities_positive(self, drive_low):
        assert drive_low.d_lnr_d_deltal > 0
        assert drive_low.d_lnr_d_deltavth > 0


class TestStageDelay:
    def test_linear_in_load(self, drive_low):
        d1 = stage_delay(drive_low, 1.0, 1e-15, 1e-15)
        d2 = stage_delay(drive_low, 1.0, 1e-15, 3e-15)
        d3 = stage_delay(drive_low, 1.0, 1e-15, 5e-15)
        assert d3 - d2 == pytest.approx(d2 - d1, rel=1e-9)

    def test_rc_formula(self, drive_low):
        d = stage_delay(drive_low, 2.0, 2e-15, 6e-15)
        expected = LN2_FACTOR * drive_low.resistance(2.0) * 8e-15
        assert d == pytest.approx(expected)

    def test_upsizing_speeds_fixed_load(self, drive_low):
        # With parasitic scaling handled by the caller, resistance halves.
        small = stage_delay(drive_low, 1.0, 1e-15, 10e-15)
        large = stage_delay(drive_low, 2.0, 2e-15, 10e-15)
        assert large < small
