"""Circuit data structure: construction, validation, topology, state."""

import pytest

from repro.circuit import Circuit
from repro.errors import NetlistError
from repro.tech import VthClass


def build_chain(lib, length=3):
    c = Circuit("chain", lib)
    c.add_input("a")
    prev = "a"
    for i in range(length):
        c.add_gate(f"g{i}", "INV", [prev])
        prev = f"g{i}"
    c.add_output(prev)
    return c


class TestConstruction:
    def test_empty_name_rejected(self, lib):
        with pytest.raises(NetlistError):
            Circuit("", lib)

    def test_duplicate_input_rejected(self, lib):
        c = Circuit("t", lib)
        c.add_input("a")
        with pytest.raises(NetlistError, match="duplicate"):
            c.add_input("a")

    def test_gate_shadowing_input_rejected(self, lib):
        c = Circuit("t", lib)
        c.add_input("a")
        with pytest.raises(NetlistError, match="duplicate"):
            c.add_gate("a", "INV", ["a"])

    def test_wrong_arity_rejected(self, lib):
        c = Circuit("t", lib)
        c.add_input("a")
        with pytest.raises(NetlistError, match="takes 2 inputs"):
            c.add_gate("g", "NAND2", ["a"])

    def test_unknown_cell_rejected(self, lib):
        c = Circuit("t", lib)
        c.add_input("a")
        from repro.errors import LibraryError

        with pytest.raises(LibraryError):
            c.add_gate("g", "FOO", ["a"])

    def test_duplicate_output_rejected(self, lib):
        c = Circuit("t", lib)
        c.add_output("x")
        with pytest.raises(NetlistError, match="duplicate"):
            c.add_output("x")


class TestFreeze:
    def test_undefined_fanin_caught(self, lib):
        c = Circuit("t", lib)
        c.add_input("a")
        c.add_gate("g", "NAND2", ["a", "ghost"])
        c.add_output("g")
        with pytest.raises(NetlistError, match="undefined net 'ghost'"):
            c.freeze()

    def test_undefined_output_caught(self, lib):
        c = build_chain(lib)
        c.add_output("nowhere")
        with pytest.raises(NetlistError, match="undefined primary output"):
            c.freeze()

    def test_missing_ports_caught(self, lib):
        c = Circuit("t", lib)
        with pytest.raises(NetlistError, match="no primary inputs"):
            c.freeze()

    def test_combinational_loop_caught(self, lib):
        c = Circuit("t", lib)
        c.add_input("a")
        c.add_gate("g1", "NAND2", ["a", "g2"])
        c.add_gate("g2", "NAND2", ["a", "g1"])
        c.add_output("g1")
        with pytest.raises(NetlistError, match="combinational loop"):
            c.freeze()

    def test_frozen_rejects_structure_changes(self, lib):
        c = build_chain(lib).freeze()
        with pytest.raises(NetlistError, match="frozen"):
            c.add_input("b")

    def test_freeze_idempotent(self, lib):
        c = build_chain(lib)
        assert c.freeze() is c.freeze()


class TestTopology:
    def test_topological_order_respects_fanins(self, c432):
        seen = set(c432.inputs)
        for name in c432.topological_order():
            gate = c432.gate(name)
            assert all(f in seen for f in gate.fanins)
            seen.add(name)

    def test_levels_of_chain(self, lib):
        c = build_chain(lib, 4)
        assert c.level_of("a") == 0
        for i in range(4):
            assert c.level_of(f"g{i}") == i + 1
        assert c.depth == 4

    def test_fanout_map(self, lib):
        c = Circuit("t", lib)
        c.add_input("a")
        c.add_gate("g1", "INV", ["a"])
        c.add_gate("g2", "NAND2", ["a", "g1"])
        c.add_output("g2")
        c.freeze()
        assert sorted(c.fanout_of("a")) == ["g1", "g2"]
        assert c.fanout_of("g2") == []

    def test_duplicate_pin_counted_per_pin(self, lib):
        c = Circuit("t", lib)
        c.add_input("a")
        c.add_gate("g", "NAND2", ["a", "a"])
        c.add_output("g")
        c.freeze()
        assert c.fanout_of("a") == ["g", "g"]

    def test_gate_index_dense_and_topological(self, c432):
        order = c432.topological_order()
        for i, name in enumerate(order):
            assert c432.gate_index(name) == i

    def test_unknown_gate_queries_raise(self, c17):
        with pytest.raises(NetlistError):
            c17.gate("nope")
        with pytest.raises(NetlistError):
            c17.gate_index("nope")
        with pytest.raises(NetlistError):
            c17.level_of("nope")


class TestImplementationState:
    def test_assignment_round_trip(self, c17):
        c17.set_uniform(size=2.0, vth=VthClass.HIGH)
        snap = c17.assignment()
        c17.set_uniform(size=1.0, vth=VthClass.LOW)
        assert all(g.size == 1.0 for g in c17.gates())
        c17.apply_assignment(snap)
        assert all(g.size == 2.0 and g.vth is VthClass.HIGH for g in c17.gates())

    def test_assignment_length_checked(self, c17, rca8):
        snap = c17.assignment()
        with pytest.raises(NetlistError):
            rca8.apply_assignment(snap)

    def test_count_vth(self, c17):
        counts = c17.count_vth()
        assert counts[VthClass.LOW] == c17.n_gates
        next(iter(c17.gates())).vth = VthClass.HIGH
        counts = c17.count_vth()
        assert counts[VthClass.HIGH] == 1

    def test_total_device_width(self, c17):
        c17.set_uniform(size=2.0)
        assert c17.total_device_width() == pytest.approx(2.0 * c17.n_gates)

    def test_stats_summary(self, c17):
        stats = c17.stats()
        assert stats["gates"] == 6
        assert stats["cells"] == {"NAND2": 6}
        assert stats["depth"] == 3
