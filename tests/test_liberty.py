"""Liberty-lite exporter."""

import re

import pytest

from repro.tech import VthClass, liberty_cell_name, write_liberty


@pytest.fixture(scope="module")
def liberty_text(lib_module):
    return write_liberty(lib_module)


@pytest.fixture(scope="module")
def lib_module():
    from repro.tech import Library, get_technology

    return Library(get_technology("ptm100"))


class TestStructure:
    def test_header(self, liberty_text):
        assert liberty_text.startswith("library (repro_dualvth)")
        assert 'time_unit : "1ns";' in liberty_text
        assert "nom_voltage : 1.200;" in liberty_text

    def test_all_cells_present(self, lib_module, liberty_text):
        expected = (
            len(lib_module.cell_names()) * 2 * len(lib_module.sizes)
        )
        assert liberty_text.count("cell (") == expected

    def test_cell_naming(self):
        assert liberty_cell_name("NAND2", VthClass.LOW, 2.0) == "NAND2_LVT_X2"
        assert liberty_cell_name("INV", VthClass.HIGH, 1.0) == "INV_HVT_X1"

    def test_braces_balanced(self, liberty_text):
        assert liberty_text.count("{") == liberty_text.count("}")

    def test_when_conditions_cover_states(self, liberty_text):
        # NAND2 has 4 leakage_power states with all four A/B combinations.
        block = liberty_text.split("cell (NAND2_LVT_X1)")[1].split("cell (")[0]
        for cond in ("!A & !B", "A & !B", "!A & B", "A & B"):
            assert f'when : "{cond}";' in block

    def test_functions_emitted(self, liberty_text):
        assert 'function : "!(A & B)"' in liberty_text  # NAND2
        assert 'function : "A ^ B"' in liberty_text  # XOR2
        assert 'function : "!A"' in liberty_text  # INV


class TestValues:
    def _cell_block(self, text, name):
        return text.split(f"cell ({name})")[1].split("cell (")[0]

    def test_leakage_values_track_library(self, lib_module, liberty_text):
        block = self._cell_block(liberty_text, "INV_LVT_X1")
        value = float(re.search(r"cell_leakage_power : ([0-9.]+);", block).group(1))
        expected = (
            lib_module.cell("INV").mean_leakage(1.0, VthClass.LOW)
            * lib_module.tech.vdd
            * 1e6
        )
        assert value == pytest.approx(expected, rel=1e-4)

    def test_hvt_leaks_less_than_lvt(self, liberty_text):
        lvt = self._cell_block(liberty_text, "NAND2_LVT_X1")
        hvt = self._cell_block(liberty_text, "NAND2_HVT_X1")
        get = lambda b: float(re.search(r"cell_leakage_power : ([0-9.]+);", b).group(1))
        assert get(hvt) < get(lvt) / 10

    def test_capacitance_scales_with_size(self, liberty_text):
        x1 = self._cell_block(liberty_text, "INV_LVT_X1")
        x4 = self._cell_block(liberty_text, "INV_LVT_X4")
        get = lambda b: float(re.search(r"capacitance : ([0-9.]+);", b).group(1))
        assert get(x4) == pytest.approx(4 * get(x1), rel=1e-3)  # 6-decimal text rounding

    def test_resistance_shrinks_with_size(self, liberty_text):
        x1 = self._cell_block(liberty_text, "INV_LVT_X1")
        x4 = self._cell_block(liberty_text, "INV_LVT_X4")
        get = lambda b: float(re.search(r"rise_resistance : ([0-9.]+);", b).group(1))
        assert get(x4) == pytest.approx(get(x1) / 4, rel=1e-3)

    def test_timing_arcs_per_input(self, liberty_text):
        block = self._cell_block(liberty_text, "NAND3_LVT_X1")
        assert block.count("timing ()") == 3
