"""The RNG-determinism taint pass (RPR6xx) on corrupted fixture packages."""

import textwrap

from repro.lint import LintContext, run_lint


def lint_rng(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, source in {"__init__.py": "", "analysis/__init__.py": "",
                        **files}.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint(LintContext(source_root=root), passes=("rng",))


def by_code(report, code):
    return [f for f in report.findings if f.code == code]


class TestTaintPath:
    def test_one_hop_unseeded_rng_to_sink(self, tmp_path):
        report = lint_rng(tmp_path, {
            "mc.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng().normal()
            """,
            "analysis/reporting.py": """
                from ..mc import draw

                def render():
                    return draw()
            """,
        })
        [finding] = by_code(report, "RPR601")
        assert finding.location == "pkg/mc.py:5"
        assert "unseeded default_rng()" in finding.message
        assert "pkg.analysis.reporting.render" in finding.message
        assert "pkg.mc.draw" in finding.message

    def test_two_hop_path_reported_with_full_chain(self, tmp_path):
        report = lint_rng(tmp_path, {
            "mc.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng().normal()
            """,
            "stats.py": """
                from .mc import draw

                def summarize():
                    return draw()
            """,
            "analysis/reporting.py": """
                from ..stats import summarize

                def render():
                    return summarize()
            """,
        })
        [finding] = by_code(report, "RPR601")
        chain = "pkg.analysis.reporting.render -> pkg.stats.summarize -> pkg.mc.draw"
        assert chain in finding.message

    def test_seed_parameter_sanitizes_the_path(self, tmp_path):
        """A seed-threading function on the chain stops the taint walk."""
        report = lint_rng(tmp_path, {
            "mc.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng().normal()
            """,
            "stats.py": """
                from .mc import draw

                def summarize(seed):
                    return draw()
            """,
            "analysis/reporting.py": """
                from ..stats import summarize

                def render():
                    return summarize(seed=1)
            """,
        })
        assert by_code(report, "RPR601") == []

    def test_source_inside_seeded_function_is_not_a_taint_seed(self, tmp_path):
        report = lint_rng(tmp_path, {
            "mc.py": """
                import numpy as np

                def draw(seed):
                    return np.random.default_rng().normal()
            """,
            "analysis/reporting.py": """
                from ..mc import draw

                def render():
                    return draw(seed=0)
            """,
        })
        assert by_code(report, "RPR601") == []

    def test_source_without_sink_path_is_silent(self, tmp_path):
        # Unseeded default_rng with no route to a sink: RPR401's job.
        report = lint_rng(tmp_path, {"mc.py": """
            import numpy as np

            def draw():
                return np.random.default_rng().normal()
        """})
        assert by_code(report, "RPR601") == []

    def test_pragma_on_source_line_suppresses(self, tmp_path):
        report = lint_rng(tmp_path, {
            "mc.py": """
                import numpy as np

                def draw():
                    return np.random.default_rng().normal()  # lint: ignore[RPR601] demo script
            """,
            "analysis/reporting.py": """
                from ..mc import draw

                def render():
                    return draw()
            """,
        })
        [finding] = by_code(report, "RPR601")
        assert finding.suppressed
        assert finding.justification == "demo script"
        assert report.exit_code() == 0


class TestLocalSourceDiagnostics:
    def test_legacy_np_random_fires(self, tmp_path):
        report = lint_rng(tmp_path, {"mc.py": """
            import numpy as np

            def draw():
                return np.random.normal(0.0, 1.0)
        """})
        [finding] = by_code(report, "RPR602")
        assert "np.random.normal()" in finding.message
        assert finding.location == "pkg/mc.py:5"

    def test_legacy_np_random_suppressed(self, tmp_path):
        report = lint_rng(tmp_path, {"mc.py": """
            import numpy as np

            def draw():
                return np.random.normal(0.0, 1.0)  # lint: ignore[RPR602] scratch code
        """})
        [finding] = by_code(report, "RPR602")
        assert finding.suppressed

    def test_list_over_set_fires(self, tmp_path):
        report = lint_rng(tmp_path, {"order.py": """
            def gates(names):
                return list(set(names))
        """})
        [finding] = by_code(report, "RPR603")
        assert "sorted()" in finding.message

    def test_listcomp_and_append_loop_over_set_fire(self, tmp_path):
        report = lint_rng(tmp_path, {"order.py": """
            def gates(names):
                first = [n for n in set(names)]
                second = []
                for n in {x for x in names}:
                    second.append(n)
                return first, second
        """})
        assert len(by_code(report, "RPR603")) == 2

    def test_set_order_suppressed(self, tmp_path):
        report = lint_rng(tmp_path, {"order.py": """
            def gates(names):
                return list(set(names))  # lint: ignore[RPR603] order irrelevant here
        """})
        [finding] = by_code(report, "RPR603")
        assert finding.suppressed

    def test_sorted_set_is_clean(self, tmp_path):
        report = lint_rng(tmp_path, {"order.py": """
            def gates(names):
                ordered = sorted(set(names))
                lookup = {n: i for i, n in enumerate(names)}
                return ordered, lookup
        """})
        assert report.findings == ()

    def test_id_key_in_dict_and_subscript_fire(self, tmp_path):
        report = lint_rng(tmp_path, {"keys.py": """
            def index(objs):
                cache = {}
                for o in objs:
                    cache[id(o)] = o
                comp = {id(o): o for o in objs}
                return cache, comp
        """})
        assert len(by_code(report, "RPR604")) == 2

    def test_id_key_suppressed(self, tmp_path):
        report = lint_rng(tmp_path, {"keys.py": """
            def index(objs):
                return {id(o): o for o in objs}  # lint: ignore[RPR604] never serialized
        """})
        [finding] = by_code(report, "RPR604")
        assert finding.suppressed
