"""Gate-length biasing: physics, moves, and optimizer integration."""

import pytest

from repro.analysis import prepare
from repro.core import OptimizerConfig, optimize_statistical
from repro.core.moves import Move, apply_move, candidate_moves, leakage_gain, own_delay_cost, revert_move
from repro.errors import OptimizationError
from repro.power import analyze_leakage, gate_input_probabilities, signal_probabilities
from repro.timing import TimingView, run_sta


class TestPhysics:
    def test_bias_slows_and_saves(self, c17):
        d0 = run_sta(c17).circuit_delay
        l0 = analyze_leakage(c17).total_power
        c17.set_uniform(length_bias=8e-9)
        d1 = run_sta(c17).circuit_delay
        l1 = analyze_leakage(c17).total_power
        # ~10% slower buys ~30% less leakage at +8 nm on ptm100.
        assert 1.05 < d1 / d0 < 1.15
        assert 0.6 < l1 / l0 < 0.8

    def test_leakage_exponential_in_bias(self, c17):
        import math

        l0 = analyze_leakage(c17).total_power
        c17.set_uniform(length_bias=4e-9)
        l4 = analyze_leakage(c17).total_power
        c17.set_uniform(length_bias=8e-9)
        l8 = analyze_leakage(c17).total_power
        # Exponential: equal steps give equal ratios.
        assert l4 / l0 == pytest.approx(l8 / l4, rel=1e-6)

    def test_snapshot_round_trip(self, c17):
        c17.set_uniform(length_bias=6e-9)
        snap = c17.assignment()
        c17.set_uniform(length_bias=0.0)
        c17.apply_assignment(snap)
        assert all(g.length_bias == pytest.approx(6e-9) for g in c17.gates())

    def test_legacy_snapshot_clears_bias(self, c17):
        from repro.circuit import GateAssignment
        from repro.tech import VthClass

        legacy = GateAssignment(
            sizes=(1.0,) * c17.n_gates, vths=(VthClass.LOW,) * c17.n_gates
        )
        c17.set_uniform(length_bias=4e-9)
        c17.apply_assignment(legacy)
        assert all(g.length_bias == 0.0 for g in c17.gates())


class TestMoves:
    def test_candidates_respect_cap(self, c17):
        view = TimingView(c17)
        c17.set_uniform(length_bias=8e-9)
        moves = list(
            candidate_moves(view, False, False, True, lbias_step=2e-9, lbias_max=8e-9)
        )
        assert moves == []  # at the cap: no further biasing

    def test_move_apply_revert(self, c17):
        view = TimingView(c17)
        move = Move(index=0, kind="lbias", new_lbias=2e-9)
        old = apply_move(view, move)
        assert view.gates[0].length_bias == pytest.approx(2e-9)
        revert_move(view, move, old)
        assert view.gates[0].length_bias == 0.0

    def test_cost_positive_gain_positive(self, c17):
        view = TimingView(c17)
        probs = gate_input_probabilities(c17, signal_probabilities(c17))
        move = Move(index=0, kind="lbias", new_lbias=4e-9)
        assert own_delay_cost(view, move) > 0
        assert leakage_gain(view, move, probs) > 0


class TestOptimizer:
    def test_lbias_improves_statistical_flow(self):
        base_setup = prepare("c432")
        base = optimize_statistical(
            base_setup.circuit, base_setup.spec, base_setup.varmodel,
            config=OptimizerConfig(),
        )
        lb_setup = prepare("c432")
        with_bias = optimize_statistical(
            lb_setup.circuit, lb_setup.spec, lb_setup.varmodel,
            target_delay=base.target_delay,
            config=OptimizerConfig(enable_lbias=True),
        )
        assert with_bias.after.hc_leakage < base.after.hc_leakage
        assert with_bias.after.timing_yield >= 0.95 - 1e-6
        assert any(g.length_bias > 0 for g in lb_setup.circuit.gates())

    def test_config_validation(self):
        with pytest.raises(OptimizationError):
            OptimizerConfig(enable_lbias=True, lbias_step=0.0)
        with pytest.raises(OptimizationError):
            OptimizerConfig(enable_lbias=True, lbias_step=5e-9, lbias_max=2e-9)

    def test_lbias_only_flow(self):
        setup = prepare("c17")
        result = optimize_statistical(
            setup.circuit, setup.spec, setup.varmodel,
            config=OptimizerConfig(
                enable_vth=False, enable_sizing=False, enable_lbias=True
            ),
        )
        assert result.after.mean_leakage < result.before.mean_leakage
        # Only biases changed.
        assert result.initial_assignment.vths == result.final_assignment.vths
        assert result.initial_assignment.sizes == result.final_assignment.sizes
