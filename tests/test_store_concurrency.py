"""ArtifactStore under concurrency: readers vs writers vs gc.

The service serves artifact bytes from the same store its jobs write
into, so the atomic-write guarantee has to hold under concurrent
access: a reader sees a complete artifact or no artifact — never a
half-written one — and gc running next to readers removes only dead
objects.
"""

import json
import threading

import pytest

from repro.campaign import ArtifactStore
from repro.errors import CampaignError


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def key_of(i):
    return f"{i:064d}"


class TestConcurrentReadersAndWriters:
    def test_readers_never_see_partial_artifacts(self, store):
        """Writers rewrite keys while readers hammer them: every read
        is either a complete, parseable payload or a clean miss."""
        n_keys, rounds = 8, 30
        payload = {"rows": list(range(64)), "note": "x" * 256}
        errors = []
        done = threading.Event()

        def writer():
            for r in range(rounds):
                for i in range(n_keys):
                    store.put(key_of(i), dict(payload, round=r, key=i))
            done.set()

        def reader():
            while not done.is_set():
                for i in range(n_keys):
                    try:
                        value = store.get(key_of(i))
                    except CampaignError:
                        continue  # not written yet: a clean miss
                    if value.get("key") != i or "rows" not in value:
                        errors.append(f"torn read on {i}: {value}")

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_raw_bytes_stay_parseable_under_rewrites(self, store):
        """The service's artifact endpoint reads file bytes directly;
        os.replace must make those bytes all-or-nothing too."""
        key = key_of(1)
        store.put(key, {"v": 0})
        path = store.artifact_path(key)
        done = threading.Event()
        errors = []

        def writer():
            for v in range(200):
                store.put(key, {"v": v})
            done.set()

        def reader():
            while not done.is_set():
                try:
                    json.loads(path.read_bytes())
                except FileNotFoundError:
                    continue
                except json.JSONDecodeError as err:
                    errors.append(str(err))

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestGCUnderReaders:
    def test_gc_next_to_readers_keeps_live_objects_readable(self, store):
        live = {key_of(i) for i in range(6)}
        dead = {key_of(i) for i in range(100, 112)}
        for key in live | dead:
            store.put(key, {"k": key})
        errors = []
        done = threading.Event()

        def reader():
            while not done.is_set():
                for key in live:
                    try:
                        value = store.get(key)
                    except CampaignError as err:
                        errors.append(f"live object vanished: {err}")
                        return
                    if value != {"k": key}:
                        errors.append(f"corrupt live object {key}")

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        stats, removed = store.gc(live)
        done.set()
        for t in threads:
            t.join()
        assert errors == []
        assert stats.removed == len(dead)
        assert set(removed) == dead
        for key in live:
            assert store.get(key) == {"k": key}
        for key in dead:
            assert not store.has(key)

    def test_writer_racing_gc_leaves_store_consistent(self, store):
        """New objects written while gc scans are either kept (written
        before the sweep saw them) or fully present after a re-put —
        never half-removed."""
        for i in range(4):
            store.put(key_of(i), {"i": i})
        live = {key_of(i) for i in range(4)}
        fresh = [key_of(i) for i in range(200, 230)]
        started = threading.Event()

        def writer():
            started.wait()
            for key in fresh:
                store.put(key, {"k": key})

        thread = threading.Thread(target=writer)
        thread.start()
        started.set()
        store.gc(live)
        thread.join()
        # Everything originally live survived untouched.
        for i in range(4):
            assert store.get(key_of(i)) == {"i": i}
        # Any fresh key the sweep removed can be re-put and read back;
        # any it missed is fully intact.
        for key in fresh:
            if store.has(key):
                assert store.get(key) == {"k": key}
            else:
                store.put(key, {"k": key})
                assert store.get(key) == {"k": key}
