"""The AST codebase pass (RPR4xx) on synthetic source trees."""

import textwrap

import pytest

from repro.errors import LintError
from repro.lint import LintContext, run_lint


def _scan(tmp_path, source, filename="mod.py"):
    (tmp_path / filename).write_text(textwrap.dedent(source))
    return run_lint(LintContext(source_root=tmp_path), passes=("codebase",))


def _codes(report):
    return [f.code for f in report.findings]


def test_rpr401_unseeded_rng(tmp_path):
    report = _scan(tmp_path, """
        import numpy as np
        rng = np.random.default_rng()
    """)
    assert _codes(report) == ["RPR401"]
    assert report.n_errors == 1


def test_rpr401_seeded_rng_is_fine(tmp_path):
    report = _scan(tmp_path, """
        import numpy as np
        rng = np.random.default_rng(1234)
        rng2 = np.random.default_rng(seed=0)
    """)
    assert report.findings == ()


def test_rpr402_float_equality(tmp_path):
    report = _scan(tmp_path, """
        def f(x):
            return x == 0.5 or x != 1.5
    """)
    assert _codes(report).count("RPR402") == 2


def test_rpr402_integer_equality_is_fine(tmp_path):
    report = _scan(tmp_path, """
        def f(n):
            return n == 0
    """)
    assert report.findings == ()


def test_rpr403_raw_unit_literal(tmp_path):
    report = _scan(tmp_path, """
        def f(delay_s, length_nm):
            return delay_s * 1e12, length_nm * 1e-9
    """)
    assert _codes(report).count("RPR403") == 2
    assert any("to_ps" in f.message for f in report.findings)


def test_rpr403_non_unit_float_is_fine(tmp_path):
    report = _scan(tmp_path, """
        def f(x):
            return x * 2.5 / 1e3
    """)
    assert report.findings == ()


def test_rpr403_not_applied_to_units_module(tmp_path):
    report = _scan(tmp_path, """
        def ps(value):
            return value * 1e-12
    """, filename="units.py")
    assert report.findings == ()


def test_rpr404_foreign_exception(tmp_path):
    report = _scan(tmp_path, """
        def f():
            raise ValueError("nope")
    """)
    assert _codes(report) == ["RPR404"]


def test_rpr404_repro_errors_and_reraise_are_fine(tmp_path):
    report = _scan(tmp_path, """
        from repro.errors import CircuitError

        def f():
            raise CircuitError("bad netlist")

        def g():
            raise NotImplementedError

        def h():
            try:
                f()
            except CircuitError:
                raise
    """)
    assert report.findings == ()


def test_rpr404_local_subclass_of_repro_error_is_fine(tmp_path):
    report = _scan(tmp_path, """
        from repro.errors import ReproError

        class LocalError(ReproError):
            pass

        def f():
            raise LocalError("still in the hierarchy")
    """)
    assert report.findings == ()


def test_rpr405_mutable_default(tmp_path):
    report = _scan(tmp_path, """
        def f(items=[], mapping={}, tags=set(), *, extra=[]):
            return items, mapping, tags, extra
    """)
    assert _codes(report).count("RPR405") == 4


def test_rpr405_none_default_is_fine(tmp_path):
    report = _scan(tmp_path, """
        def f(items=None, count=0, name=""):
            return items, count, name
    """)
    assert report.findings == ()


def test_pragma_suppresses_with_justification(tmp_path):
    report = _scan(tmp_path, """
        def f(x):
            if x == 0.0:  # lint: ignore[RPR402] exact zero is a sentinel
                return 0
            return 1
    """)
    (finding,) = report.findings
    assert finding.suppressed
    assert finding.justification == "exact zero is a sentinel"
    assert report.exit_code(strict=True) == 0
    assert report.n_suppressed == 1


def test_pragma_for_other_code_does_not_suppress(tmp_path):
    report = _scan(tmp_path, """
        def f(x):
            if x == 0.0:  # lint: ignore[RPR403] wrong code
                return 0
            return 1
    """)
    (finding,) = report.findings
    assert not finding.suppressed


def test_pragma_with_multiple_codes(tmp_path):
    report = _scan(tmp_path, """
        def f(x):
            return x == 0.5 and x * 1e12  # lint: ignore[RPR402, RPR403] demo
    """)
    assert all(f.suppressed for f in report.findings)
    assert len(report.findings) == 2


def test_location_is_relative_with_line(tmp_path):
    report = _scan(tmp_path, """
        import numpy as np
        rng = np.random.default_rng()
    """)
    (finding,) = report.findings
    assert finding.location.endswith("mod.py:3")


def test_syntax_error_raises_lint_error(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    with pytest.raises(LintError):
        run_lint(LintContext(source_root=tmp_path), passes=("codebase",))


def test_missing_root_raises_lint_error(tmp_path):
    with pytest.raises(LintError):
        run_lint(
            LintContext(source_root=tmp_path / "nope"), passes=("codebase",)
        )


def test_real_source_tree_has_no_active_errors_or_warnings():
    """`repro lint --self` must stay clean (fixed or suppressed)."""
    from pathlib import Path

    import repro

    root = Path(repro.__file__).parent
    report = run_lint(LintContext(source_root=root), passes=("codebase",))
    assert report.exit_code(strict=True) == 0
    # Suppressions must carry a justification, not a bare pragma.
    for finding in report.findings:
        if finding.suppressed:
            assert finding.justification
            assert finding.justification != "suppressed without justification"
