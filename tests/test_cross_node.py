"""Cross-technology-node behaviour.

The statistical flow's advantage is not a ptm100 artifact: the same
comparison runs on the 130 nm and 70 nm presets, and the node-to-node
trends (leakier and more variation-sensitive as L shrinks) must hold.
"""

import pytest

from repro.analysis import prepare, run_comparison
from repro.core import OptimizerConfig
from repro.power import analyze_leakage
from repro.tech import Library, get_technology
from repro.circuit import make_benchmark


@pytest.fixture(scope="module")
def per_node_comparisons():
    out = {}
    for tech_name in ("ptm130", "ptm100", "ptm70"):
        setup = prepare("c432", tech_name=tech_name)
        out[tech_name] = run_comparison(setup, config=OptimizerConfig())
    return out


def test_statistical_wins_on_every_node(per_node_comparisons):
    for tech_name, row in per_node_comparisons.items():
        assert row.extra_mean_savings > 0.05, tech_name
        assert row.statistical.after.timing_yield >= 0.95 - 1e-6, tech_name


def test_smaller_nodes_leak_more_per_gate():
    leaks = {}
    for tech_name in ("ptm130", "ptm100", "ptm70"):
        lib = Library(get_technology(tech_name))
        circuit = make_benchmark("c432", lib)
        leaks[tech_name] = analyze_leakage(circuit).total_power
    assert leaks["ptm70"] > leaks["ptm100"] > leaks["ptm130"]


def test_same_topology_across_nodes():
    a = make_benchmark("c432", Library(get_technology("ptm130")))
    b = make_benchmark("c432", Library(get_technology("ptm70")))
    assert a.n_gates == b.n_gates
    assert [g.cell_name for g in a.gates()] == [g.cell_name for g in b.gates()]
