"""Monte-Carlo STA: sampling plumbing and statistical sanity."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.timing import draw_samples, run_monte_carlo_sta, run_sta


class TestDrawSamples:
    def test_deterministic_per_seed(self, varmodel_c432):
        s1 = draw_samples(varmodel_c432, 50, seed=3)
        s2 = draw_samples(varmodel_c432, 50, seed=3)
        assert np.allclose(s1.delta_l, s2.delta_l)
        assert np.allclose(s1.delta_vth, s2.delta_vth)

    def test_shapes(self, varmodel_c432):
        s = draw_samples(varmodel_c432, 7, seed=0)
        assert s.n_samples == 7
        assert s.delta_l.shape == (7, varmodel_c432.n_gates)


class TestMonteCarloSta:
    def test_mean_close_to_nominal(self, c432, varmodel_c432):
        nominal = run_sta(c432).circuit_delay
        mc = run_monte_carlo_sta(c432, varmodel_c432, n_samples=2000, seed=1)
        assert mc.mean == pytest.approx(nominal, rel=0.05)

    def test_all_delays_positive(self, c432, varmodel_c432):
        mc = run_monte_carlo_sta(c432, varmodel_c432, n_samples=500, seed=2)
        assert np.all(mc.circuit_delays > 0)

    def test_yield_and_percentile_consistent(self, c432, varmodel_c432):
        mc = run_monte_carlo_sta(c432, varmodel_c432, n_samples=2000, seed=3)
        t = mc.percentile(0.9)
        assert mc.timing_yield(t) == pytest.approx(0.9, abs=0.02)

    def test_percentile_bounds_checked(self, c432, varmodel_c432):
        mc = run_monte_carlo_sta(c432, varmodel_c432, n_samples=100, seed=4)
        with pytest.raises(TimingError):
            mc.percentile(1.5)

    def test_reuses_given_samples(self, c432, varmodel_c432):
        samples = draw_samples(varmodel_c432, 200, seed=9)
        mc1 = run_monte_carlo_sta(c432, varmodel_c432, samples=samples)
        mc2 = run_monte_carlo_sta(c432, varmodel_c432, samples=samples)
        assert np.allclose(mc1.circuit_delays, mc2.circuit_delays)

    def test_model_mismatch_rejected(self, c432, rca8, spec):
        from repro.circuit import build_variation_model

        vm = build_variation_model(rca8, spec)
        with pytest.raises(TimingError, match="variation model covers"):
            run_monte_carlo_sta(c432, vm, n_samples=10)

    def test_inter_die_dominates_spread(self, c432, spec):
        # With fully-correlated variation the relative circuit-delay spread
        # must exceed the uncorrelated case (no averaging across gates).
        from repro.circuit import build_variation_model

        vm_corr = build_variation_model(c432, spec.fully_correlated())
        vm_flat = build_variation_model(c432, spec.without_correlation())
        mc_corr = run_monte_carlo_sta(c432, vm_corr, n_samples=1500, seed=6)
        mc_flat = run_monte_carlo_sta(c432, vm_flat, n_samples=1500, seed=6)
        assert mc_corr.std / mc_corr.mean > mc_flat.std / mc_flat.mean
