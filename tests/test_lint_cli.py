"""CLI surfaces added with the perf pass: rules listing, suppression
visibility, qualified --effects lookups, and --profile plumbing."""

import json
import textwrap
from pathlib import Path

from repro.cli import main
from repro.lint import (
    PASS_NAMES,
    REGISTRY,
    LintContext,
    render_text,
    run_lint,
)

DOCS = Path(__file__).parent.parent / "docs" / "static_analysis.md"


class TestRulesSubcommand:
    def test_text_listing_groups_by_pass(self, capsys):
        assert main(["lint", "rules"]) == 0
        out = capsys.readouterr().out
        for pass_name in PASS_NAMES:
            assert f"[{pass_name}]" in out
        assert "RPR901" in out and "scalar-loop-in-hot-path" in out
        assert f"{len(REGISTRY.codes())} rule(s) in {len(PASS_NAMES)} pass(es)" in out

    def test_json_listing_matches_registry(self, capsys):
        assert main(["lint", "rules", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(r["code"] for r in payload) == sorted(REGISTRY.codes())
        by_code = {r["code"]: r for r in payload}
        for rule in REGISTRY:
            entry = by_code[rule.code]
            assert entry["name"] == rule.name
            assert entry["severity"] == rule.severity.value
            assert entry["pass"] == rule.pass_name
            assert entry["summary"] == rule.summary

    def test_sarif_format_rejected(self, capsys):
        assert main(["lint", "rules", "--format", "sarif"]) == 1
        assert "text or json" in capsys.readouterr().err

    def test_docs_table_lists_every_rule(self):
        # The docs rule tables are the user-facing registry mirror; a new
        # rule is not done until its row exists with matching severity.
        docs = DOCS.read_text(encoding="utf-8")
        for rule in REGISTRY:
            row = f"| {rule.code} | `{rule.name}` | {rule.severity.value} |"
            assert row in docs, f"docs/static_analysis.md misses {row}"


def suppressed_fixture_report(tmp_path):
    """One active and one pragma-suppressed RPR905 in one module."""
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    (root / "m.py").write_text(textwrap.dedent("""
        def active(xs):
            allowed = [1, 2, 3]
            hits = 0
            for x in xs:
                if x in allowed:
                    hits += 1
            return hits

        def acknowledged(xs):
            small = [1, 2]
            total = 0
            for x in xs:
                if x in small:  # lint: ignore[RPR905] two elements, audited
                    total += 1
            return total
    """))
    return run_lint(LintContext(source_root=root), passes=("perf",))


class TestSuppressedVisibility:
    def test_text_hides_suppressed_by_default(self, tmp_path):
        report = suppressed_fixture_report(tmp_path)
        assert any(f.suppressed for f in report.findings)
        text = render_text(report)
        assert "allowed" in text
        assert "audited" not in text
        assert "1 suppressed" in text  # the summary still counts it

    def test_show_suppressed_reveals_justifications(self, tmp_path):
        report = suppressed_fixture_report(tmp_path)
        text = render_text(report, show_suppressed=True)
        assert "suppressed" in text
        assert "(justification: two elements, audited)" in text

    def test_cli_flag_round_trip(self, capsys):
        # Self-lint carries pragma suppressions; the flag must surface
        # them and the default must not.
        args = ["lint", "--self", "--passes", "perf"]
        assert main(args) == 0
        hidden = capsys.readouterr().out
        assert main(args + ["--show-suppressed"]) == 0
        shown = capsys.readouterr().out
        assert "(justification:" not in hidden
        assert "(justification:" in shown


class TestEffectsLookups:
    def test_class_method_lookup(self, capsys):
        assert main(["lint", "--effects", "LevelSchedule.build"]) == 0
        out = capsys.readouterr().out
        assert "repro.timing.mc.LevelSchedule.build:" in out

    def test_module_path_lists_every_node(self, capsys):
        assert main(["lint", "--effects", "timing.mc"]) == 0
        out = capsys.readouterr().out
        assert "repro.timing.mc.LevelSchedule.build:" in out
        assert "repro.timing.mc.run_monte_carlo_sta:" in out

    def test_full_module_path_accepted(self, capsys):
        assert main(["lint", "--effects", "repro.timing.mc"]) == 0
        assert "repro.timing.mc.draw_samples:" in capsys.readouterr().out

    def test_error_names_all_three_forms(self, capsys):
        assert main(["lint", "--effects", "never.heard.of_it"]) == 1
        err = capsys.readouterr().err
        assert "Class.method" in err and "module path" in err


class TestProfileFlag:
    def test_missing_trace_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "lint", "--self", "--passes", "perf",
            "--profile", str(tmp_path / "nope.jsonl"),
        ]) == 1
        assert "no such profile" in capsys.readouterr().err

    def test_profiled_self_lint_reports_measured_seconds(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            json.dumps({"type": "span", "name": "ssta.run", "dur": 1.25}) + "\n"
        )
        args = ["lint", "--self", "--passes", "perf", "--profile", str(trace)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "(measured: 1.250s)" in first
        # Fixed trace, fixed tree: the ranking is fully deterministic.
        assert main(args) == 0
        assert capsys.readouterr().out == first
