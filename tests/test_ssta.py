"""SSTA: canonical delays, propagation, yield, criticality — vs MC."""

import numpy as np
import pytest

from repro.circuit import build_variation_model
from repro.errors import TimingError
from repro.tech import VthClass
from repro.timing import (
    TimingView,
    gate_delay_canonicals,
    run_monte_carlo_sta,
    run_ssta,
    run_sta,
)


class TestGateCanonicals:
    def test_means_match_nominal_sta(self, c432, varmodel_c432):
        view = TimingView(c432)
        canonicals = gate_delay_canonicals(view, varmodel_c432)
        nominal = view.nominal_delays()
        assert np.allclose([c.mean for c in canonicals], nominal)

    def test_every_gate_has_spread(self, c432, varmodel_c432):
        view = TimingView(c432)
        for c in gate_delay_canonicals(view, varmodel_c432):
            assert c.sigma > 0

    def test_model_size_mismatch_rejected(self, c432, rca8, spec):
        vm_small = build_variation_model(rca8, spec)
        with pytest.raises(TimingError, match="variation model covers"):
            run_ssta(c432, vm_small)


class TestCircuitDistribution:
    def test_mean_close_to_nominal(self, c432, varmodel_c432):
        ssta = run_ssta(c432, varmodel_c432)
        nominal = run_sta(c432).circuit_delay
        # The max operator pushes the mean slightly above nominal.
        assert ssta.circuit_delay.mean >= nominal * 0.999
        assert ssta.circuit_delay.mean <= nominal * 1.10

    def test_matches_monte_carlo(self, c432, varmodel_c432):
        ssta = run_ssta(c432, varmodel_c432)
        mc = run_monte_carlo_sta(c432, varmodel_c432, n_samples=4000, seed=5)
        assert ssta.circuit_delay.mean == pytest.approx(mc.mean, rel=0.02)
        assert ssta.circuit_delay.sigma == pytest.approx(mc.std, rel=0.10)

    def test_yield_monotone_in_target(self, c432, varmodel_c432):
        ssta = run_ssta(c432, varmodel_c432)
        d = ssta.circuit_delay.mean
        ys = [ssta.timing_yield(t) for t in (0.9 * d, d, 1.1 * d, 1.3 * d)]
        assert all(a < b for a, b in zip(ys, ys[1:]))

    def test_yield_at_mean_is_half_ish(self, c432, varmodel_c432):
        ssta = run_ssta(c432, varmodel_c432)
        assert ssta.timing_yield(ssta.circuit_delay.mean) == pytest.approx(0.5, abs=0.01)

    def test_delay_at_yield_inverse(self, c432, varmodel_c432):
        ssta = run_ssta(c432, varmodel_c432)
        t = ssta.delay_at_yield(0.95)
        assert ssta.timing_yield(t) == pytest.approx(0.95, abs=1e-9)

    def test_invalid_target_rejected(self, c432, varmodel_c432):
        ssta = run_ssta(c432, varmodel_c432)
        with pytest.raises(TimingError):
            ssta.timing_yield(-1.0)

    def test_high_vth_shifts_distribution(self, c432, varmodel_c432):
        before = run_ssta(c432, varmodel_c432).circuit_delay.mean
        c432.set_uniform(vth=VthClass.HIGH)
        after = run_ssta(c432, varmodel_c432).circuit_delay.mean
        assert after > before


class TestCriticality:
    def test_chain_criticality_all_one(self, lib, spec):
        from repro.circuit import Circuit

        c = Circuit("chain", lib)
        c.add_input("a")
        prev = "a"
        for i in range(4):
            c.add_gate(f"g{i}", "INV", [prev])
            prev = f"g{i}"
        c.add_output(prev)
        vm = build_variation_model(c, spec)
        ssta = run_ssta(c, vm)
        assert np.allclose(ssta.criticality, 1.0, atol=1e-9)

    def test_symmetric_fork_splits_criticality(self, lib, spec):
        from repro.circuit import Circuit

        c = Circuit("fork", lib)
        c.add_input("a")
        c.add_gate("p", "INV", ["a"])
        c.add_gate("l", "INV", ["p"])
        c.add_gate("r", "INV", ["p"])
        c.add_gate("j", "NAND2", ["l", "r"])
        c.add_output("j")
        vm = build_variation_model(c, spec)
        ssta = run_ssta(c, vm)
        crit_l = ssta.criticality[c.gate_index("l")]
        crit_r = ssta.criticality[c.gate_index("r")]
        # Symmetric branches share criticality ~0.5/0.5; the stem and the
        # join are always critical.
        assert crit_l == pytest.approx(0.5, abs=0.15)
        assert crit_l + crit_r == pytest.approx(1.0, abs=1e-6)
        assert ssta.criticality[c.gate_index("p")] == pytest.approx(1.0, abs=1e-6)
        assert ssta.criticality[c.gate_index("j")] == pytest.approx(1.0, abs=1e-6)

    def test_criticalities_in_unit_range(self, c432, varmodel_c432):
        ssta = run_ssta(c432, varmodel_c432)
        assert ssta.criticality.min() >= -1e-12
        assert ssta.criticality.max() <= 1.0 + 1e-9

    def test_nominal_critical_path_is_statistically_critical(
        self, c432, varmodel_c432
    ):
        sta = run_sta(c432)
        ssta = run_ssta(c432, varmodel_c432)
        path_crit = [
            ssta.criticality[c432.gate_index(name)] for name in sta.critical_path
        ]
        # The deterministic critical path should be among the most
        # statistically critical gates (not necessarily probability 1).
        assert np.mean(path_crit) > 0.3
