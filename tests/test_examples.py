"""The example scripts must run end to end (they are the documented API)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))


def test_examples_directory_populated():
    assert "quickstart.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 3


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script} produced no output"
