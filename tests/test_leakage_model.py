"""Stack-effect rules for series/parallel transistor networks."""

import pytest

from repro.errors import PowerError
from repro.tech import (
    parallel_network_leakage,
    series_network_leakage,
    stack_leakage_factor,
)


class TestStackFactor:
    def test_fully_on_path_does_not_leak(self):
        assert stack_leakage_factor(0) == 0.0

    def test_single_off_device_full_leakage(self):
        assert stack_leakage_factor(1) == 1.0

    def test_two_off_devices_suppressed(self):
        # 1 / (2 * S): with the default S=8 this is a 16x reduction.
        assert stack_leakage_factor(2) == pytest.approx(1.0 / 16.0)

    def test_three_off_devices_suppressed_harder(self):
        assert stack_leakage_factor(3) == pytest.approx(1.0 / (3 * 64.0))

    def test_monotone_decreasing_in_stack_depth(self):
        factors = [stack_leakage_factor(m) for m in range(1, 6)]
        assert all(a > b for a, b in zip(factors, factors[1:]))

    def test_custom_suppression(self):
        assert stack_leakage_factor(2, suppression=10.0) == pytest.approx(0.05)

    def test_rejects_negative_count(self):
        with pytest.raises(PowerError):
            stack_leakage_factor(-1)

    def test_rejects_suppression_below_one(self):
        with pytest.raises(PowerError):
            stack_leakage_factor(2, suppression=0.5)


class TestSeriesNetwork:
    def test_all_on_conducts_no_leak(self):
        assert series_network_leakage(1e-9, [True, True]) == 0.0

    def test_one_off_leaks_fully(self):
        assert series_network_leakage(1e-9, [False, True]) == pytest.approx(1e-9)

    def test_two_off_stack_effect(self):
        leak = series_network_leakage(1e-9, [False, False])
        assert leak == pytest.approx(1e-9 / 16.0)

    def test_position_irrelevant(self):
        a = series_network_leakage(1e-9, [False, True, True])
        b = series_network_leakage(1e-9, [True, True, False])
        assert a == pytest.approx(b)


class TestParallelNetwork:
    def test_all_on_no_subthreshold(self):
        assert parallel_network_leakage(1e-9, [True, True]) == 0.0

    def test_each_off_device_adds(self):
        one = parallel_network_leakage(1e-9, [False, True])
        two = parallel_network_leakage(1e-9, [False, False])
        assert two == pytest.approx(2 * one)

    def test_scales_with_device_current(self):
        assert parallel_network_leakage(5e-9, [False]) == pytest.approx(5e-9)
