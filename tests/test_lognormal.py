"""Lognormal moments, Wilkinson matching, and correlated sums vs MC."""

import math

import numpy as np
import pytest

from repro.errors import VariationError
from repro.variation import (
    lognormal_mean,
    lognormal_params_from_moments,
    lognormal_percentile,
    lognormal_variance,
    single_lognormal,
    sum_of_lognormals,
)


class TestSingleLognormal:
    def test_moments_formulas(self):
        mu, sigma = 1.0, 0.5
        assert lognormal_mean(mu, sigma) == pytest.approx(math.exp(1.125))
        expected_var = (math.exp(0.25) - 1) * math.exp(2.25)
        assert lognormal_variance(mu, sigma) == pytest.approx(expected_var)

    def test_median_percentile(self):
        assert lognormal_percentile(2.0, 0.7, 0.5) == pytest.approx(math.exp(2.0))

    def test_percentile_bounds(self):
        with pytest.raises(VariationError):
            lognormal_percentile(0, 1, 0.0)
        with pytest.raises(VariationError):
            lognormal_percentile(0, 1, 1.0)

    def test_moment_matching_round_trip(self):
        mu, sigma = -3.0, 0.8
        mean = lognormal_mean(mu, sigma)
        var = lognormal_variance(mu, sigma)
        mu2, sigma2 = lognormal_params_from_moments(mean, var)
        assert mu2 == pytest.approx(mu)
        assert sigma2 == pytest.approx(sigma)

    def test_moment_matching_rejects_bad_moments(self):
        with pytest.raises(VariationError):
            lognormal_params_from_moments(-1.0, 1.0)
        with pytest.raises(VariationError):
            lognormal_params_from_moments(1.0, -1.0)

    def test_summary_helpers(self):
        summary = single_lognormal(0.0, 0.5)
        assert summary.mean == pytest.approx(lognormal_mean(0.0, 0.5))
        assert summary.variance == pytest.approx(lognormal_variance(0.0, 0.5))
        assert summary.mean_plus_k_sigma(2.0) == pytest.approx(
            summary.mean + 2 * summary.std
        )
        assert summary.cdf(summary.percentile(0.9)) == pytest.approx(0.9)
        assert summary.cdf(0.0) == 0.0


class TestCorrelatedSum:
    def test_independent_sum_moments(self):
        # Two independent lognormals: moments add.
        log_means = np.array([0.0, 1.0])
        loadings = np.zeros((2, 1))
        indeps = np.array([0.4, 0.6])
        s = sum_of_lognormals(log_means, loadings, indeps)
        expected_mean = lognormal_mean(0.0, 0.4) + lognormal_mean(1.0, 0.6)
        expected_var = lognormal_variance(0.0, 0.4) + lognormal_variance(1.0, 0.6)
        assert s.mean == pytest.approx(expected_mean)
        assert s.variance == pytest.approx(expected_var)

    def test_perfectly_correlated_pair(self):
        # Identical loadings, no independent part: X + X = 2X exactly.
        log_means = np.array([0.0, 0.0])
        loadings = np.full((2, 1), 0.5)
        indeps = np.zeros(2)
        s = sum_of_lognormals(log_means, loadings, indeps)
        assert s.mean == pytest.approx(2 * lognormal_mean(0.0, 0.5))
        assert s.variance == pytest.approx(4 * lognormal_variance(0.0, 0.5))

    def test_against_monte_carlo(self):
        rng = np.random.default_rng(42)
        n, k = 60, 3
        log_means = rng.normal(-2.0, 0.5, size=n)
        loadings = rng.normal(0.0, 0.15, size=(n, k))
        indeps = np.abs(rng.normal(0.0, 0.2, size=n))
        s = sum_of_lognormals(log_means, loadings, indeps)
        z = rng.standard_normal((40000, k))
        r = rng.standard_normal((40000, n))
        samples = np.exp(log_means + z @ loadings.T + r * indeps).sum(axis=1)
        assert s.mean == pytest.approx(samples.mean(), rel=0.02)
        assert s.std == pytest.approx(samples.std(), rel=0.06)
        assert s.percentile(0.95) == pytest.approx(
            np.quantile(samples, 0.95), rel=0.05
        )

    def test_blocked_accumulation_matches_direct(self):
        # Exceed the internal block size to exercise the blocked path.
        rng = np.random.default_rng(0)
        n = 1100
        log_means = rng.normal(-1.0, 0.3, size=n)
        loadings = rng.normal(0.0, 0.1, size=(n, 2))
        indeps = np.full(n, 0.1)
        s = sum_of_lognormals(log_means, loadings, indeps)
        var_i = (loadings**2).sum(axis=1) + indeps**2
        means = np.exp(log_means + var_i / 2)
        cov = loadings @ loadings.T + np.diag(indeps**2)
        direct_second = means @ np.exp(cov) @ means
        direct_var = direct_second - means.sum() ** 2
        assert s.variance == pytest.approx(direct_var, rel=1e-10)

    def test_shape_validation(self):
        with pytest.raises(VariationError):
            sum_of_lognormals(np.zeros(3), np.zeros((2, 1)), np.zeros(3))
        with pytest.raises(VariationError):
            sum_of_lognormals(np.zeros(0), np.zeros((0, 1)), np.zeros(0))
