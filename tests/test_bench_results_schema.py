"""Schema regression tests for the committed benchmark result JSONs.

The ``benchmarks/results/*.json`` artifacts are consumed downstream
(docs tables, the campaign report, exp cross-references), so their
shape is an interface: a bench refactor that silently drops a key ships
a result file nothing else can read.  These tests pin the schemas of
the machine-readable records this repo commits —

* **exp17** (parallel scaling): every run must carry the per-shard
  worker-startup attribution alongside the speedup, because a
  ``speedup < 1`` row without ``worker_startup_seconds_total`` is
  exactly the misleading artifact the attribution fields exist to fix;
* **exp20** (variance reduction): every (circuit, eta, estimator, n)
  cell must report the full estimate tuple plus the derived
  samples-to-target-CI, and the committed numbers themselves must still
  back the headline >= 10x ISLE claim;
* **exp21** (job service): every worker-pool run must carry both
  service-level numbers — submit-to-first-event latency and settled
  jobs/minute — and record that every job succeeded, because a
  throughput figure over partially-failed jobs is not a throughput
  figure;
* **exp22** (engine cross-validation): every registered timing engine
  must appear for every circuit with yields, errors, KS distance, and
  runtime, and the committed numbers must still back the stated
  tolerance claim for the pinned (histogram, mc) backends.

Only committed artifacts are checked — regenerating them with the bench
suite rewrites the files, and these tests then hold the new copies to
the same contract.
"""

import json
import math
from pathlib import Path

import pytest

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"


def load(name):
    path = RESULTS / name
    if not path.exists():
        pytest.skip(f"{name} not committed")
    return json.loads(path.read_text())


@pytest.fixture(scope="module")
def exp17():
    return load("exp17_parallel_scaling.json")


@pytest.fixture(scope="module")
def exp20():
    return load("exp20_variance_reduction.json")


@pytest.fixture(scope="module")
def exp21():
    return load("exp21_service.json")


@pytest.fixture(scope="module")
def exp22():
    return load("exp22_engine_xval.json")


EXP17_RUN_KEYS = {
    "mc_run_seconds",
    "speedup_vs_serial",
    "shard_count",
    "shard_seconds_total",
    "worker_startup_seconds_total",
    "worker_startup_shards",
    "worker_startup_seconds_mean",
    "leak_mean_w",
    "leak_p95_w",
    "delay_mean_s",
    "delay_p95_s",
}


class TestExp17Schema:
    def test_top_level_keys(self, exp17):
        assert {
            "circuit", "n_samples", "seed", "cpu_count", "timing_source",
            "runs", "bitwise_identical_across_jobs",
        } <= set(exp17)
        assert exp17["timing_source"] == "telemetry:span_seconds"
        assert exp17["bitwise_identical_across_jobs"] is True

    def test_every_run_has_the_full_record(self, exp17):
        assert "1" in exp17["runs"]
        for jobs, run in exp17["runs"].items():
            assert set(run) == EXP17_RUN_KEYS, jobs
            assert run["mc_run_seconds"] > 0.0, jobs
            assert run["shard_count"] > 0, jobs

    def test_startup_attribution_is_consistent(self, exp17):
        # Serial pays no pool spawn; a pooled run observes one startup
        # per shard (zero only if the pool degraded in-process), and
        # the mean is total/count.
        for jobs, run in exp17["runs"].items():
            shards = run["worker_startup_shards"]
            total = run["worker_startup_seconds_total"]
            if jobs == "1":
                assert shards == 0 and total == 0.0
                continue
            assert shards in (0, run["shard_count"]), jobs
            assert total >= 0.0, jobs
            expected_mean = total / shards if shards else 0.0
            assert math.isclose(
                run["worker_startup_seconds_mean"], expected_mean,
                rel_tol=1e-12, abs_tol=0.0,
            ), jobs

    def test_statistics_identical_across_jobs(self, exp17):
        base = exp17["runs"]["1"]
        for jobs, run in exp17["runs"].items():
            for key in ("leak_mean_w", "leak_p95_w", "delay_mean_s",
                        "delay_p95_s"):
                assert run[key] == base[key], (jobs, key)


EXP20_CELL_KEYS = {
    "timing_yield",
    "std_error",
    "n_effective",
    "variance_reduction",
    "samples_to_target_ci",
}


class TestExp20Schema:
    def test_top_level_keys(self, exp20):
        assert {
            "seed", "sample_counts", "etas", "estimators", "ci_halfwidth",
            "ci_z", "headline", "circuits",
        } <= set(exp20)
        assert set(exp20["estimators"]) == {"plain", "isle", "sobol", "cv"}
        assert exp20["ci_halfwidth"] > 0.0

    def test_grid_is_complete(self, exp20):
        etas = {str(e) for e in exp20["etas"]}
        ns = {str(n) for n in exp20["sample_counts"]}
        assert set(exp20["circuits"]) == {"c432", "c880"}
        for circuit, targets in exp20["circuits"].items():
            assert set(targets) == etas, circuit
            for eta, t in targets.items():
                assert t["target_delay_s"] > 0.0, (circuit, eta)
                assert set(t["estimators"]) == set(exp20["estimators"])
                for name, curve in t["estimators"].items():
                    assert set(curve) == ns, (circuit, eta, name)
                    for n, cell in curve.items():
                        assert set(cell) == EXP20_CELL_KEYS, (
                            circuit, eta, name, n
                        )
                        assert 0.0 <= cell["timing_yield"] <= 1.0
                        assert cell["std_error"] >= 0.0
                        assert cell["n_effective"] > 0.0

    def test_committed_numbers_back_the_headline(self, exp20):
        head = exp20["headline"]
        n_ref = str(max(exp20["sample_counts"]))
        for circuit, targets in exp20["circuits"].items():
            cell = targets[str(head["eta"])]["estimators"][
                head["estimator"]
            ][n_ref]
            assert cell["variance_reduction"] >= head["floor"], (
                circuit, cell["variance_reduction"]
            )

    def test_samples_to_ci_matches_the_scaling_law(self, exp20):
        se_target = exp20["ci_halfwidth"] / exp20["ci_z"]
        for circuit, targets in exp20["circuits"].items():
            for eta, t in targets.items():
                for name, curve in t["estimators"].items():
                    for n, cell in curve.items():
                        se = cell["std_error"]
                        expected = (
                            int(n) * (se / se_target) ** 2
                            if se > 0.0 else 0.0
                        )
                        assert math.isclose(
                            cell["samples_to_target_ci"], expected,
                            rel_tol=1e-12, abs_tol=0.0,
                        ), (circuit, eta, name, n)


EXP21_RUN_KEYS = {
    "workers",
    "all_succeeded",
    "elapsed_seconds",
    "jobs_per_minute",
    "job_run_seconds_total",
    "submit_to_first_event_seconds_mean",
    "submit_to_first_event_seconds_max",
}


class TestExp21Schema:
    def test_top_level_keys(self, exp21):
        assert {
            "campaign", "jobs_per_run", "tenants", "margins",
            "worker_counts", "cpu_count", "timing_source", "runs",
        } <= set(exp21)
        assert exp21["timing_source"] == (
            "monotonic:submit->first-event / settle-window"
        )
        assert exp21["jobs_per_run"] == (
            len(exp21["tenants"]) * len(exp21["margins"])
        )

    def test_every_pool_size_has_the_full_record(self, exp21):
        assert set(exp21["runs"]) == {
            str(w) for w in exp21["worker_counts"]
        }
        for workers, run in exp21["runs"].items():
            assert set(run) == EXP21_RUN_KEYS, workers
            assert run["workers"] == int(workers)
            assert run["all_succeeded"] is True, workers
            assert run["elapsed_seconds"] > 0.0, workers
            assert run["jobs_per_minute"] > 0.0, workers

    def test_latencies_are_positive_and_ordered(self, exp21):
        for workers, run in exp21["runs"].items():
            mean = run["submit_to_first_event_seconds_mean"]
            peak = run["submit_to_first_event_seconds_max"]
            assert 0.0 < mean <= peak, workers


EXP22_ENGINE_KEYS = {
    "runtime_seconds",
    "mean_s",
    "sigma_s",
    "ks_distance",
    "yields",
    "yield_errors",
    "max_yield_error",
}


class TestExp22Schema:
    def test_top_level_keys(self, exp22):
        assert {
            "truth", "margins", "tolerance", "pinned_engines",
            "engine_params", "circuits",
        } <= set(exp22)
        assert exp22["truth"]["engine"] == "mc"
        assert exp22["truth"]["n_samples"] >= 10000
        # The mc backend must not be validated against its own seed.
        assert exp22["truth"]["seed"] != (
            exp22["engine_params"]["mc"]["seed"]
        )
        assert len(exp22["margins"]) == 3
        assert exp22["tolerance"] > 0.0

    def test_every_engine_covers_every_circuit(self, exp22):
        from repro.engines import ENGINE_NAMES

        margin_keys = {f"m{m:g}" for m in exp22["margins"]}
        assert set(exp22["circuits"]) == {"c432", "c880"}
        assert set(exp22["engine_params"]) == set(ENGINE_NAMES)
        for circuit, c in exp22["circuits"].items():
            assert c["nominal_mean_s"] > 0.0, circuit
            assert set(c["truth"]["yields"]) == margin_keys, circuit
            assert set(c["engines"]) == set(ENGINE_NAMES), circuit
            for name, e in c["engines"].items():
                assert set(e) == EXP22_ENGINE_KEYS, (circuit, name)
                assert set(e["yields"]) == margin_keys, (circuit, name)
                assert set(e["yield_errors"]) == margin_keys, (
                    circuit, name
                )
                assert e["runtime_seconds"] > 0.0, (circuit, name)
                assert 0.0 <= e["ks_distance"] <= 1.0, (circuit, name)
                for key, y in e["yields"].items():
                    assert 0.0 <= y <= 1.0, (circuit, name, key)

    def test_errors_are_consistent_with_yields(self, exp22):
        for circuit, c in exp22["circuits"].items():
            truth = c["truth"]["yields"]
            for name, e in c["engines"].items():
                for key, err in e["yield_errors"].items():
                    expected = abs(e["yields"][key] - truth[key])
                    assert math.isclose(
                        err, expected, rel_tol=1e-12, abs_tol=1e-15
                    ), (circuit, name, key)
                assert math.isclose(
                    e["max_yield_error"],
                    max(e["yield_errors"].values()),
                    rel_tol=1e-12, abs_tol=0.0,
                ), (circuit, name)

    def test_committed_numbers_back_the_tolerance_claim(self, exp22):
        tol = exp22["tolerance"]
        assert set(exp22["pinned_engines"]) == {"histogram", "mc"}
        for circuit, c in exp22["circuits"].items():
            for name in exp22["pinned_engines"]:
                err = c["engines"][name]["max_yield_error"]
                assert err <= tol, (circuit, name, err)
