"""The two telemetry contracts: zero overhead disabled, result-neutral enabled.

*Zero overhead*: with no session active, instrumented code paths run
against the stateless no-op singleton — no files, no accumulated state,
no per-call allocations of spans or metrics.

*Result neutrality*: enabling a session changes no optimizer or
Monte-Carlo output bytes.  Every numeric field is compared with exact
equality; only ``runtime_seconds`` (a clock read by design) is excluded.
"""

import dataclasses

from repro.analysis.experiments import prepare
from repro.power import run_monte_carlo_leakage
from repro.core import optimize_statistical
from repro.telemetry import (
    NULL_METRIC,
    NULL_SPAN,
    NULL_TELEMETRY,
    get_telemetry,
    telemetry_session,
)

CIRCUIT = "c17"
SAMPLES = 500
SEED = 7


def run_optimizer():
    setup = prepare(CIRCUIT)
    return optimize_statistical(setup.circuit, setup.spec, setup.varmodel)


def run_mc():
    setup = prepare(CIRCUIT)
    return run_monte_carlo_leakage(
        setup.circuit, setup.varmodel, n_samples=SAMPLES, seed=SEED,
        n_jobs=1, keep_samples=True,
    )


class TestZeroOverheadDisabled:
    def test_instrumented_run_leaves_no_telemetry_state(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert get_telemetry() is NULL_TELEMETRY
        run_mc()
        assert get_telemetry() is NULL_TELEMETRY
        assert list(tmp_path.iterdir()) == []  # no trace files appear

    def test_null_objects_are_shared_not_allocated(self):
        tele = get_telemetry()
        spans = {id(tele.span("a")), id(tele.span("b", attr=1))}
        metrics = {
            id(tele.counter("x")),
            id(tele.gauge("y")),
            id(tele.histogram("z", kind="k")),
        }
        assert spans == {id(NULL_SPAN)}
        assert metrics == {id(NULL_METRIC)}

    def test_null_singleton_is_stateless(self):
        assert NULL_TELEMETRY.__slots__ == ()
        assert not hasattr(NULL_TELEMETRY, "__dict__")


class TestResultNeutrality:
    def test_optimizer_bitwise_identical(self):
        baseline = run_optimizer()
        with telemetry_session():
            traced = run_optimizer()
        for field in dataclasses.fields(baseline):
            if field.name == "runtime_seconds":
                continue  # a clock read, different by construction
            assert getattr(traced, field.name) == getattr(baseline, field.name), field.name

    def test_mc_bitwise_identical(self, tmp_path):
        baseline = run_mc()
        with telemetry_session(path=tmp_path / "trace.jsonl"):
            traced = run_mc()
        assert traced.mean_power == baseline.mean_power
        assert traced.std_power == baseline.std_power
        assert (traced.powers == baseline.powers).all()

    def test_mc_bitwise_identical_across_jobs_with_telemetry(self):
        setup = prepare(CIRCUIT)

        def stats(jobs):
            with telemetry_session():
                result = run_monte_carlo_leakage(
                    setup.circuit, setup.varmodel, n_samples=SAMPLES,
                    seed=SEED, n_jobs=jobs, keep_samples=False,
                )
            return result.mean_power, result.percentile_power(0.95)

        assert stats(1) == stats(2)
