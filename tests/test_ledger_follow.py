"""EventLedger tailing: read_from offsets and follow() under concurrency."""

import json
import threading
import time

import pytest

from repro.campaign import EventLedger


@pytest.fixture
def ledger(tmp_path):
    return EventLedger(tmp_path / "ledger.jsonl")


class TestReadFrom:
    def test_missing_file_yields_nothing(self, ledger):
        events, offset = ledger.read_from(0)
        assert events == []
        assert offset == 0

    def test_reads_then_resumes(self, ledger):
        ledger.append("run_started", run=1)
        events, offset = ledger.read_from(0)
        assert [e["event"] for e in events] == ["run_started"]
        # Nothing new: same offset back, no duplicates.
        again, offset2 = ledger.read_from(offset)
        assert again == []
        assert offset2 == offset
        ledger.append("run_finished", run=1)
        tail, _ = ledger.read_from(offset)
        assert [e["event"] for e in tail] == ["run_finished"]

    def test_offsets_partition_the_file(self, ledger):
        for i in range(5):
            ledger.append("task_started", task=f"t{i}")
        collected = []
        offset = 0
        while True:
            events, offset = ledger.read_from(offset)
            if not events:
                break
            collected.extend(events)
        assert [e["task"] for e in collected] == [f"t{i}" for i in range(5)]
        assert collected == ledger.replay()

    def test_torn_tail_left_unconsumed(self, ledger):
        ledger.append("run_started")
        with ledger.path.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "task_sta')  # crash mid-append
        events, offset = ledger.read_from(0)
        assert [e["event"] for e in events] == ["run_started"]
        # Finishing the append makes the line visible at the returned
        # offset — the torn prefix was not skipped past.
        with ledger.path.open("a", encoding="utf-8") as handle:
            handle.write('rted", "task": "t0"}\n')
        tail, _ = ledger.read_from(offset)
        assert [e["event"] for e in tail] == ["task_started"]

    def test_complete_garbage_line_skipped_but_consumed(self, ledger):
        ledger.append("run_started")
        with ledger.path.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        ledger.append("run_finished")
        events, offset = ledger.read_from(0)
        assert [e["event"] for e in events] == ["run_started", "run_finished"]
        assert ledger.read_from(offset) == ([], offset)


class TestFollow:
    def test_follow_replays_then_stops_after_drain(self, ledger):
        ledger.append("run_started")
        ledger.append("run_finished")
        done = {"flag": False}

        def stop():
            return done["flag"]

        events = []
        done["flag"] = True  # stop immediately after one full drain
        for event in ledger.follow(poll=0.01, stop=stop):
            events.append(event)
        assert [e["event"] for e in events] == ["run_started", "run_finished"]

    def test_follow_sees_appends_while_reading(self, ledger):
        """A writer thread appends while follow() consumes: nothing lost,
        nothing duplicated, order preserved."""
        total = 200
        stop_flag = threading.Event()

        def writer():
            for i in range(total):
                ledger.append("task_started", seq=i)
                if i % 50 == 0:
                    time.sleep(0.002)
            stop_flag.set()

        thread = threading.Thread(target=writer)
        thread.start()
        seen = [
            event["seq"]
            for event in ledger.follow(poll=0.001, stop=stop_flag.is_set)
        ]
        thread.join()
        assert seen == list(range(total))

    def test_follow_tolerates_torn_tail_mid_stream(self, ledger):
        """A torn line during the stream is re-read once completed."""
        ledger.append("run_started")
        half = json.dumps({"event": "task_started", "seq": 1})
        cut = len(half) // 2
        stop_flag = threading.Event()

        def writer():
            time.sleep(0.02)
            with ledger.path.open("a", encoding="utf-8") as handle:
                handle.write(half[:cut])
                handle.flush()
                time.sleep(0.05)  # leave the tear visible to a few polls
                handle.write(half[cut:] + "\n")
            stop_flag.set()

        thread = threading.Thread(target=writer)
        thread.start()
        events = list(ledger.follow(poll=0.005, stop=stop_flag.is_set))
        thread.join()
        assert [e["event"] for e in events] == ["run_started", "task_started"]

    def test_follow_timeout_bounds_an_idle_tail(self, ledger):
        ledger.append("run_started")
        start = time.monotonic()
        events = list(ledger.follow(poll=0.005, timeout=0.05))
        elapsed = time.monotonic() - start
        assert [e["event"] for e in events] == ["run_started"]
        assert elapsed < 2.0

    def test_follow_from_offset_skips_history(self, ledger):
        ledger.append("run_started")
        _, offset = ledger.read_from(0)
        ledger.append("run_finished")
        events = list(ledger.follow(offset=offset, poll=0.005, stop=lambda: True))
        assert [e["event"] for e in events] == ["run_finished"]
