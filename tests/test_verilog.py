"""Structural Verilog reader/writer."""

import itertools

import pytest

from repro.circuit import (
    make_benchmark,
    parse_verilog,
    ripple_carry_adder,
    write_verilog,
)
from repro.errors import NetlistError


def simulate(circuit, input_values):
    values = dict(input_values)
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        cell = circuit.cell_of(gate)
        values[name] = cell.evaluate([values[f] for f in gate.fanins])
    return values


EXAMPLE = """
// simple majority with an inverter
module maj3 (a, b, c, y);
  input a, b, c;
  output y;
  wire ab, bc, ca, m;
  and u1 (ab, a, b);
  and u2 (bc, b, c);
  and u3 (ca, c, a);
  or  u4 (m, ab, bc, ca);
  not u5 (y, m);
endmodule
"""


class TestParse:
    def test_basic_structure(self, lib):
        c = parse_verilog(EXAMPLE, lib)
        assert c.name == "maj3"
        assert c.inputs == ("a", "b", "c")
        assert c.outputs == ("y",)

    def test_functionally_correct(self, lib):
        c = parse_verilog(EXAMPLE, lib)
        for bits in itertools.product((False, True), repeat=3):
            v = simulate(c, dict(zip("abc", bits)))
            majority = sum(bits) >= 2
            assert v["y"] == (not majority)

    def test_block_and_line_comments_stripped(self, lib):
        text = "/* header\ncomment */" + EXAMPLE.replace(
            "output y;", "output y;  // the result"
        )
        c = parse_verilog(text, lib)
        assert c.n_gates == 5

    def test_missing_module_rejected(self, lib):
        with pytest.raises(NetlistError, match="no module"):
            parse_verilog("wire x;", lib)

    def test_missing_endmodule_rejected(self, lib):
        with pytest.raises(NetlistError, match="endmodule"):
            parse_verilog("module m (a); input a;", lib)

    def test_unsupported_construct_rejected(self, lib):
        text = EXAMPLE.replace("endmodule", "assign z = a;\nendmodule")
        with pytest.raises(NetlistError, match="unsupported Verilog construct"):
            parse_verilog(text, lib)

    def test_vector_nets_rejected(self, lib):
        text = """
        module m (a, y);
          input [3:0] a;
          output y;
          not u (y, a);
        endmodule
        """
        with pytest.raises(NetlistError, match="unsupported net declaration|unsupported Verilog"):
            parse_verilog(text, lib)

    def test_wide_primitive_decomposed(self, lib):
        text = """
        module wide (a, b, c, d, e, f, y);
          input a, b, c, d, e, f;
          output y;
          nand u (y, a, b, c, d, e, f);
        endmodule
        """
        c = parse_verilog(text, lib)
        assert c.n_gates > 1
        for bits in itertools.product((False, True), repeat=6):
            v = simulate(c, dict(zip("abcdef", bits)))
            assert v["y"] == (not all(bits))


class TestWrite:
    def test_c17_round_trip(self, lib):
        c17 = make_benchmark("c17", lib)
        text = write_verilog(c17)
        rt = parse_verilog(text, lib)
        assert rt.n_gates == c17.n_gates
        # Equivalent behaviour under the renamed ports.
        mapping = dict(zip(c17.inputs, rt.inputs))
        for bits in itertools.product((False, True), repeat=5):
            v1 = simulate(c17, dict(zip(c17.inputs, bits)))
            v2 = simulate(rt, {mapping[n]: b for n, b in zip(c17.inputs, bits)})
            for out1, out2 in zip(c17.outputs, rt.outputs):
                assert v1[out1] == v2[out2]

    def test_numeric_names_escaped(self, lib):
        text = write_verilog(make_benchmark("c17", lib))
        assert "n_22" in text
        assert " 22 " not in text

    def test_adder_round_trip_counts(self, lib):
        adder = ripple_carry_adder(lib, 4)
        rt = parse_verilog(write_verilog(adder), lib)
        assert rt.n_gates == adder.n_gates
        assert len(rt.outputs) == len(adder.outputs)

    def test_written_text_is_well_formed(self, lib):
        text = write_verilog(make_benchmark("c432", lib))
        assert text.startswith("// c432")
        assert text.rstrip().endswith("endmodule")
        assert text.count("(") == text.count(")")
