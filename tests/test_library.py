"""Standard-cell library: characterization, logic, and leakage tables."""

import itertools

import numpy as np
import pytest

from repro.errors import LibraryError
from repro.tech import (
    CellFunction,
    Library,
    VthClass,
    evaluate_function,
    output_probability,
)


class TestLibraryConstruction:
    def test_builtin_cells_present(self, lib):
        names = lib.cell_names()
        for expected in ("INV", "BUF", "NAND2", "NAND3", "NAND4", "NOR2",
                         "NOR3", "NOR4", "AND2", "AND3", "OR2", "OR3",
                         "XOR2", "XNOR2"):
            assert expected in names

    def test_unknown_cell_raises(self, lib):
        with pytest.raises(LibraryError, match="unknown cell"):
            lib.cell("NAND9")

    def test_sizes_sorted_validation(self, tech):
        with pytest.raises(LibraryError):
            Library(tech, sizes=(4.0, 2.0, 1.0))

    def test_sizes_below_one_rejected(self, tech):
        with pytest.raises(LibraryError):
            Library(tech, sizes=(0.5, 1.0))

    def test_needs_two_sizes(self, tech):
        with pytest.raises(LibraryError):
            Library(tech, sizes=(1.0,))

    def test_size_grid_navigation(self, lib):
        assert lib.next_size_up(1.0) == 2.0
        assert lib.next_size_down(2.0) == 1.0
        assert lib.next_size_down(lib.sizes[0]) is None
        assert lib.next_size_up(lib.sizes[-1]) is None

    def test_size_index_unknown_raises(self, lib):
        with pytest.raises(LibraryError):
            lib.size_index(5.0)

    def test_fo4_in_plausible_band(self, lib):
        # ~100 nm node: FO4 of a few tens of ps.
        assert 15e-12 < lib.fo4_delay(VthClass.LOW) < 80e-12


class TestCellCapacitance:
    def test_input_cap_linear_in_size(self, lib):
        inv = lib.cell("INV")
        assert inv.input_cap(4.0) == pytest.approx(4 * inv.input_cap(1.0))

    def test_logical_effort_ordering(self, lib):
        # NAND2 presents more input cap than INV, NOR2 more than NAND2.
        inv = lib.cell("INV").input_cap(1.0)
        nand2 = lib.cell("NAND2").input_cap(1.0)
        nor2 = lib.cell("NOR2").input_cap(1.0)
        assert inv < nand2 < nor2

    def test_size_outside_grid_rejected(self, lib):
        with pytest.raises(LibraryError):
            lib.cell("INV").input_cap(100.0)


class TestCellDelay:
    def test_delay_positive_and_linear_in_load(self, lib):
        nand = lib.cell("NAND2")
        d1 = nand.delay(1.0, 1e-15, VthClass.LOW)
        d2 = nand.delay(1.0, 2e-15, VthClass.LOW)
        d3 = nand.delay(1.0, 3e-15, VthClass.LOW)
        assert 0 < d1 < d2 < d3
        assert d3 - d2 == pytest.approx(d2 - d1, rel=1e-9)

    def test_high_vth_slower(self, lib):
        inv = lib.cell("INV")
        load = 4 * inv.input_cap(1.0)
        assert inv.delay(1.0, load, VthClass.HIGH) > inv.delay(1.0, load, VthClass.LOW)

    def test_upsizing_speeds_up_under_load(self, lib):
        inv = lib.cell("INV")
        load = 20 * inv.input_cap(1.0)
        assert inv.delay(4.0, load, VthClass.LOW) < inv.delay(1.0, load, VthClass.LOW)

    def test_buffer_slower_than_inverter(self, lib):
        load = 4 * lib.cell("INV").input_cap(1.0)
        d_inv = lib.cell("INV").delay(1.0, load, VthClass.LOW)
        d_buf = lib.cell("BUF").delay(1.0, load, VthClass.LOW)
        assert d_buf > d_inv

    def test_coefficients_match_delay(self, lib):
        for name in ("INV", "NAND3", "AND2", "XOR2"):
            cell = lib.cell(name)
            intrinsic, slope = cell.nominal_delay_coefficients(2.0, VthClass.LOW)
            load = 7e-15
            assert intrinsic + slope * load == pytest.approx(
                cell.delay(2.0, load, VthClass.LOW), rel=1e-12
            )

    def test_negative_load_rejected(self, lib):
        with pytest.raises(LibraryError):
            lib.cell("INV").delay(1.0, -1e-15, VthClass.LOW)

    def test_process_deviation_slows(self, lib):
        inv = lib.cell("INV")
        load = 4 * inv.input_cap(1.0)
        nom = inv.delay(1.0, load, VthClass.LOW)
        slow = inv.delay(1.0, load, VthClass.LOW, delta_l=5e-9, delta_vth0=0.02)
        assert slow > nom


class TestCellLogic:
    CASES = {
        "INV": (CellFunction.INV, 1),
        "BUF": (CellFunction.BUF, 1),
        "NAND2": (CellFunction.NAND, 2),
        "NOR3": (CellFunction.NOR, 3),
        "AND2": (CellFunction.AND, 2),
        "OR3": (CellFunction.OR, 3),
        "XOR2": (CellFunction.XOR, 2),
        "XNOR2": (CellFunction.XNOR, 2),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_truth_tables(self, lib, name):
        func, n = self.CASES[name]
        cell = lib.cell(name)
        for bits in itertools.product((False, True), repeat=n):
            assert cell.evaluate(bits) == evaluate_function(func, bits)

    def test_evaluate_function_reference(self):
        assert evaluate_function(CellFunction.NAND, (True, True)) is False
        assert evaluate_function(CellFunction.NAND, (True, False)) is True
        assert evaluate_function(CellFunction.XOR, (True, True, True)) is True
        assert evaluate_function(CellFunction.XNOR, (True, False)) is False

    def test_arity_enforced(self, lib):
        with pytest.raises(LibraryError):
            lib.cell("NAND2").evaluate([True])

    def test_output_probability_consistency(self, lib):
        # P(out=1) from the formula must match the truth-table expectation
        # under independent inputs.
        for name in sorted(self.CASES):
            func, n = self.CASES[name]
            cell = lib.cell(name)
            probs = [0.3, 0.6, 0.8][:n]
            expected = 0.0
            for bits in itertools.product((False, True), repeat=n):
                w = 1.0
                for bit, p in zip(bits, probs):
                    w *= p if bit else (1 - p)
                if cell.evaluate(bits):
                    expected += w
            assert cell.output_probability(probs) == pytest.approx(expected)

    def test_output_probability_range_check(self, lib):
        with pytest.raises(LibraryError):
            lib.cell("INV").output_probability([1.5])


class TestCellLeakage:
    def test_high_vth_leaks_less_everywhere(self, lib):
        for name in lib.cell_names():
            cell = lib.cell(name)
            low = cell.leakage_by_state(1.0, VthClass.LOW)
            high = cell.leakage_by_state(1.0, VthClass.HIGH)
            assert np.all(high < low), name

    def test_leakage_linear_in_size(self, lib):
        nand = lib.cell("NAND2")
        t1 = nand.leakage_by_state(1.0, VthClass.LOW)
        t3 = nand.leakage_by_state(3.0, VthClass.LOW)
        assert np.allclose(t3, 3 * t1)

    def test_nand2_stack_state_is_lowest(self, lib):
        # Input state 00 puts two series NMOS off: the stack effect makes
        # it the least leaky state.
        table = lib.cell("NAND2").leakage_by_state(1.0, VthClass.LOW)
        assert table.argmin() == 0

    def test_inverter_two_states(self, lib):
        table = lib.cell("INV").leakage_by_state(1.0, VthClass.LOW)
        assert table.shape == (2,)
        assert np.all(table > 0)

    def test_mean_leakage_default_uniform(self, lib):
        nand = lib.cell("NAND2")
        table = nand.leakage_by_state(1.0, VthClass.LOW)
        assert nand.mean_leakage(1.0, VthClass.LOW) == pytest.approx(table.mean())

    def test_mean_leakage_weighted(self, lib):
        nand = lib.cell("NAND2")
        # All-ones inputs: exactly the (1,1) state.
        pinned = nand.mean_leakage(1.0, VthClass.LOW, input_probs=[1.0, 1.0])
        table = nand.leakage_by_state(1.0, VthClass.LOW)
        assert pinned == pytest.approx(table[3])

    def test_leakage_process_factor(self, lib):
        import math

        inv = lib.cell("INV")
        base = inv.leakage(1.0, VthClass.LOW)
        s_l, s_v = lib.log_leakage_sensitivities
        shifted = inv.leakage(1.0, VthClass.LOW, delta_l=-2e-9, delta_vth0=-0.01)
        assert shifted / base == pytest.approx(
            math.exp(s_l * -2e-9 + s_v * -0.01), rel=1e-12
        )

    def test_and2_leaks_more_than_nand2(self, lib):
        # AND = NAND + INV: the extra stage adds leakage.
        nand = lib.cell("NAND2").mean_leakage(1.0, VthClass.LOW)
        and2 = lib.cell("AND2").mean_leakage(1.0, VthClass.LOW)
        assert and2 > nand

    def test_xor_macro_leaks_more_than_nand2(self, lib):
        nand = lib.cell("NAND2").mean_leakage(1.0, VthClass.LOW)
        xor = lib.cell("XOR2").mean_leakage(1.0, VthClass.LOW)
        assert xor > 2 * nand


class TestOutputProbabilityFunction:
    def test_wide_xor_half_at_half(self):
        assert output_probability(CellFunction.XOR, [0.5] * 5) == pytest.approx(0.5)

    def test_and_product(self):
        assert output_probability(CellFunction.AND, [0.5, 0.5, 0.5]) == pytest.approx(
            0.125
        )

    def test_nor_complement(self):
        p = output_probability(CellFunction.NOR, [0.2, 0.4])
        assert p == pytest.approx(0.8 * 0.6)
