"""Pipeline-yield workload: stage fold semantics across every backend."""

import numpy as np
import pytest

from repro.circuit import make_benchmark, pipeline_stages
from repro.circuit.placement import build_variation_model
from repro.engines import (
    PipelineStage,
    analyze_pipeline,
)
from repro.errors import EngineError, NetlistError
from repro.variation import VariationSpec
from repro.variation.model import VariationModel


def _stage(circuit, spec, name=None):
    return PipelineStage(
        name=name or circuit.name,
        circuit=circuit,
        varmodel=build_variation_model(circuit, spec),
    )


@pytest.fixture
def c17_stages(lib, spec):
    """Three identical c17 stages (fresh circuits, shared spec)."""
    return tuple(
        _stage(make_benchmark("c17", lib), spec, name=f"s{k}")
        for k in range(3)
    )


class TestValidation:
    def test_empty_pipeline_rejected(self):
        with pytest.raises(EngineError, match="at least one stage"):
            analyze_pipeline(())

    def test_unknown_engine_lists_registry(self, c17_stages):
        with pytest.raises(EngineError, match="clark, histogram, mc"):
            analyze_pipeline(c17_stages, engine="spice")

    def test_stage_without_shared_globals_rejected(self, c17):
        class _NoGlobals:
            n_globals = 1

        stage = PipelineStage(name="s0", circuit=c17, varmodel=_NoGlobals())
        with pytest.raises(EngineError, match="global factors"):
            analyze_pipeline((stage,))

    @pytest.mark.parametrize(
        "engine, params",
        [
            ("clark", {"bins": 64}),
            ("histogram", {"n_samples": 10}),
            ("mc", {"bins": 64}),
        ],
    )
    def test_foreign_params_rejected(self, c17_stages, engine, params):
        with pytest.raises(EngineError, match="does not accept"):
            analyze_pipeline(c17_stages, engine=engine, **params)

    @pytest.mark.parametrize(
        "params",
        [{"n_samples": 0}, {"n_samples": True}, {"seed": -1}],
    )
    def test_mc_param_validation(self, c17_stages, params):
        with pytest.raises(EngineError):
            analyze_pipeline(c17_stages, engine="mc", **params)

    def test_bad_period_queries_rejected(self, c17_stages):
        result = analyze_pipeline(c17_stages)
        with pytest.raises(EngineError):
            result.yield_at(0.0)
        with pytest.raises(EngineError):
            result.period_at_yield(1.0)


class TestFoldSemantics:
    @pytest.mark.parametrize("engine", ["clark", "histogram"])
    def test_identical_stages_split_criticality(self, c17_stages, engine):
        result = analyze_pipeline(c17_stages, engine=engine)
        assert result.n_stages == 3
        assert sum(result.stage_criticality) == pytest.approx(1.0, abs=0.02)
        for share in result.stage_criticality:
            assert share == pytest.approx(1.0 / 3.0, abs=0.05)
        assert result.stage_imbalance == pytest.approx(1.0, abs=1e-6)

    def test_mc_identical_stages_split_criticality(self, c17_stages):
        result = analyze_pipeline(
            c17_stages, engine="mc", n_samples=4000, seed=0
        )
        assert sum(result.stage_criticality) == pytest.approx(1.0)
        for share in result.stage_criticality:
            assert share == pytest.approx(1.0 / 3.0, abs=0.05)

    @pytest.mark.parametrize("engine", ["clark", "histogram", "mc"])
    def test_dominant_stage_takes_criticality(self, lib, spec, engine):
        # A c432 stage against two tiny c17 stages: the big stage must
        # own essentially all the criticality and set the period.
        stages = (
            _stage(make_benchmark("c17", lib), spec, "small0"),
            _stage(make_benchmark("c432", lib), spec, "big"),
            _stage(make_benchmark("c17", lib), spec, "small1"),
        )
        params = {"n_samples": 500, "seed": 0} if engine == "mc" else {}
        result = analyze_pipeline(stages, engine=engine, **params)
        assert result.stage_criticality[1] > 0.99
        assert result.period.mean == pytest.approx(
            result.stages[1].mean, rel=0.02
        )
        assert result.stage_imbalance > 1.5

    def test_pipeline_period_exceeds_single_stage(self, c17_stages):
        # The statistical max over identical stages costs mean delay —
        # exactly the imbalance-aware effect the workload studies.
        single = analyze_pipeline(c17_stages[:1])
        triple = analyze_pipeline(c17_stages)
        assert triple.period.mean > single.period.mean
        assert single.stage_criticality == (1.0,)

    def test_engines_cross_agree_on_period_yield(self, lib, spec):
        stages = tuple(
            _stage(make_benchmark("c432", lib), spec, f"s{k}")
            for k in range(2)
        )
        clark = analyze_pipeline(stages, engine="clark")
        target = 1.05 * clark.period.mean
        hist = analyze_pipeline(stages, engine="histogram", bins=256)
        mc = analyze_pipeline(stages, engine="mc", n_samples=4000, seed=0)
        y = clark.yield_at(target)
        assert hist.yield_at(target) == pytest.approx(y, abs=0.03)
        assert mc.yield_at(target) == pytest.approx(y, abs=0.03)

    def test_mc_deterministic_per_seed(self, c17_stages):
        a = analyze_pipeline(c17_stages, engine="mc", n_samples=300, seed=7)
        b = analyze_pipeline(c17_stages, engine="mc", n_samples=300, seed=7)
        assert np.array_equal(
            a.period.sorted_samples, b.period.sorted_samples
        )
        assert a.stage_criticality == b.stage_criticality

    def test_histogram_deterministic_per_bins(self, c17_stages):
        a = analyze_pipeline(c17_stages, engine="histogram", bins=128)
        b = analyze_pipeline(c17_stages, engine="histogram", bins=128)
        assert np.array_equal(a.period.values, b.period.values)
        assert np.array_equal(a.period.pmf, b.period.pmf)


class TestGeneratorScenario:
    def test_stage_counts_ramp_with_imbalance(self, lib):
        stages = pipeline_stages(lib, 4, 50, imbalance=2.0, seed=3)
        assert len(stages) == 4
        counts = [s.n_gates for s in stages]
        assert counts == sorted(counts)
        assert counts[-1] >= 1.5 * counts[0]

    def test_balanced_request_keeps_stages_close(self, lib):
        # Collector gates added by the random generator wobble the exact
        # counts; a balanced request must still keep stages within a few
        # gates of each other rather than ramping.
        stages = pipeline_stages(lib, 3, 40, imbalance=1.0, seed=1)
        counts = [s.n_gates for s in stages]
        assert max(counts) - min(counts) <= 0.25 * min(counts)

    def test_deterministic_per_seed(self, lib):
        a = pipeline_stages(lib, 2, 30, seed=5)
        b = pipeline_stages(lib, 2, 30, seed=5)
        for sa, sb in zip(a, b):
            assert [g.name for g in sa.gates()] == [g.name for g in sb.gates()]

    def test_validation(self, lib):
        with pytest.raises(NetlistError):
            pipeline_stages(lib, 0, 40)
        with pytest.raises(NetlistError):
            pipeline_stages(lib, 2, 40, imbalance=0.5)
        with pytest.raises(NetlistError):
            pipeline_stages(lib, 2, 4)

    def test_generated_stages_feed_the_workload(self, lib, spec):
        circuits = pipeline_stages(lib, 3, 30, imbalance=1.6, seed=2)
        stages = tuple(_stage(c, spec) for c in circuits)
        result = analyze_pipeline(stages, engine="histogram", bins=64)
        assert result.stage_imbalance > 1.0
        # The ramped final stage dominates the period.
        assert result.stage_criticality[-1] == max(result.stage_criticality)


class TestCampaignPipelineTask:
    def test_spec_validates_engine_and_stages(self):
        from repro.campaign.spec import CampaignSpec
        from repro.errors import CampaignError

        with pytest.raises(CampaignError, match="engine must be one of"):
            CampaignSpec(name="t", benchmarks=("c17",), engine="spice")
        with pytest.raises(CampaignError, match="pipeline_stages"):
            CampaignSpec(name="t", benchmarks=("c17",), pipeline_stages=-1)

    def test_expand_emits_pipeline_task(self):
        from repro.campaign.dag import expand
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(
            name="t", benchmarks=("c17",), pipeline_stages=2,
            engine="histogram",
        )
        tasks = {t.task_id: t for t in expand(spec)}
        task = tasks["pipeline:c17:k2"]
        assert task.kind == "pipeline"
        assert task.params == {"stages": 2, "engine": "histogram"}
        assert task.deps == ("analyze:c17",)
        # Report settles on the pipeline artifact too.
        assert "pipeline:c17:k2" in tasks["report"].deps

    def test_zero_stages_emits_no_pipeline_task(self):
        from repro.campaign.dag import expand
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(name="t", benchmarks=("c17",))
        assert not [t for t in expand(spec) if t.kind == "pipeline"]

    def test_engine_enters_task_key(self):
        from repro.campaign.dag import complete_task_keys
        from repro.campaign.spec import CampaignSpec

        base = dict(name="t", benchmarks=("c17",), pipeline_stages=2)
        keys_a = complete_task_keys(CampaignSpec(engine="clark", **base))
        keys_b = complete_task_keys(CampaignSpec(engine="histogram", **base))
        assert keys_a["pipeline:c17:k2"] != keys_b["pipeline:c17:k2"]
        # Engine choice must not invalidate the analyze baseline.
        assert keys_a["analyze:c17"] == keys_b["analyze:c17"]

    @pytest.mark.parametrize("engine", ["clark", "histogram", "mc"])
    def test_execute_pipeline_task(self, engine):
        from repro.campaign.dag import expand
        from repro.campaign.spec import CampaignSpec
        from repro.campaign.tasks import execute_task

        spec = CampaignSpec(
            name="t", benchmarks=("c17",), pipeline_stages=3,
            engine=engine, mc_samples=200,
        )
        task = next(t for t in expand(spec) if t.kind == "pipeline")
        payload = execute_task(task, spec, {})
        assert payload["engine"] == engine
        assert payload["n_stages"] == 3
        assert payload["period_mean"] > 0
        assert sum(payload["stage_criticality"]) == pytest.approx(
            1.0, abs=0.02
        )
        assert 0.0 <= payload["yields"]["m1.1"] <= 1.0

    def test_pipeline_payload_reproducible(self):
        from repro.campaign.dag import expand
        from repro.campaign.spec import CampaignSpec
        from repro.campaign.tasks import execute_task

        spec = CampaignSpec(
            name="t", benchmarks=("c17",), pipeline_stages=2,
            engine="mc", mc_samples=150,
        )
        task = next(t for t in expand(spec) if t.kind == "pipeline")
        assert execute_task(task, spec, {}) == execute_task(task, spec, {})
