"""Yield utilities over canonical forms and MC samples."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.timing import (
    Canonical,
    empirical_yield_curve,
    target_for_yield,
    timing_yield,
    yield_curve,
)


@pytest.fixture
def delay():
    return Canonical(1e-9, np.array([5e-11]), 3e-11)


def test_timing_yield_at_mean(delay):
    assert timing_yield(delay, 1e-9) == pytest.approx(0.5)


def test_target_for_yield_inverse(delay):
    t = target_for_yield(delay, 0.99)
    assert timing_yield(delay, t) == pytest.approx(0.99, abs=1e-9)


def test_target_for_yield_bounds(delay):
    with pytest.raises(TimingError):
        target_for_yield(delay, 1.0)


def test_timing_yield_rejects_bad_target(delay):
    with pytest.raises(TimingError):
        timing_yield(delay, 0.0)


def test_yield_curve_monotone(delay):
    targets = np.linspace(0.8e-9, 1.3e-9, 11)
    _, ys = yield_curve(delay, targets)
    assert np.all(np.diff(ys) >= 0)
    assert ys[0] < 0.05
    assert ys[-1] > 0.95


def test_yield_curve_empty_rejected(delay):
    with pytest.raises(TimingError):
        yield_curve(delay, [])


def test_empirical_curve_matches_analytic(delay):
    rng = np.random.default_rng(0)
    samples = rng.normal(delay.mean, delay.sigma, size=50000)
    targets = [0.9e-9, 1.0e-9, 1.1e-9]
    _, analytic = yield_curve(delay, targets)
    _, empirical = empirical_yield_curve(samples, targets)
    assert np.allclose(analytic, empirical, atol=0.01)


def test_empirical_curve_empty_rejected():
    with pytest.raises(TimingError):
        empirical_yield_curve(np.array([1.0]), [])
