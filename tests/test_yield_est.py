"""Yield utilities over canonical forms and MC samples."""

import math

import numpy as np
import pytest

from repro.errors import TimingError
from repro.mcstat import ESTIMATOR_NAMES
from repro.timing import (
    Canonical,
    MCYieldEstimate,
    degenerate_cdf,
    degenerate_quantile,
    empirical_yield_curve,
    estimate_timing_yield,
    target_for_yield,
    timing_yield,
    yield_curve,
)
from repro.variation import VariationSpec
from repro.variation.model import VariationModel


@pytest.fixture
def delay():
    return Canonical(1e-9, np.array([5e-11]), 3e-11)


def test_timing_yield_at_mean(delay):
    assert timing_yield(delay, 1e-9) == pytest.approx(0.5)


def test_target_for_yield_inverse(delay):
    t = target_for_yield(delay, 0.99)
    assert timing_yield(delay, t) == pytest.approx(0.99, abs=1e-9)


def test_target_for_yield_bounds(delay):
    with pytest.raises(TimingError):
        target_for_yield(delay, 1.0)


def test_timing_yield_rejects_bad_target(delay):
    with pytest.raises(TimingError):
        timing_yield(delay, 0.0)


def test_yield_curve_monotone(delay):
    targets = np.linspace(0.8e-9, 1.3e-9, 11)
    _, ys = yield_curve(delay, targets)
    assert np.all(np.diff(ys) >= 0)
    assert ys[0] < 0.05
    assert ys[-1] > 0.95


def test_yield_curve_empty_rejected(delay):
    with pytest.raises(TimingError):
        yield_curve(delay, [])


def test_empirical_curve_matches_analytic(delay):
    rng = np.random.default_rng(0)
    samples = rng.normal(delay.mean, delay.sigma, size=50000)
    targets = [0.9e-9, 1.0e-9, 1.1e-9]
    _, analytic = yield_curve(delay, targets)
    _, empirical = empirical_yield_curve(samples, targets)
    assert np.allclose(analytic, empirical, atol=0.01)


def test_empirical_curve_empty_rejected():
    with pytest.raises(TimingError):
        empirical_yield_curve(np.array([1.0]), [])


def test_empirical_curve_rejects_empty_samples():
    with pytest.raises(TimingError, match="empty delay sample"):
        empirical_yield_curve(np.array([]), [1e-9])


class TestDegenerateHelpers:
    """Point-mass CDF/quantile: the zero-variance clamping primitives."""

    def test_cdf_is_unit_step(self):
        assert degenerate_cdf(2.0, 1.9) == 0.0
        assert degenerate_cdf(2.0, 2.0) == 1.0  # right-continuous
        assert degenerate_cdf(2.0, 2.1) == 1.0
        assert not math.isnan(degenerate_cdf(2.0, 2.0))

    def test_quantile_is_the_point(self):
        for q in (0.001, 0.5, 0.999):
            assert degenerate_quantile(3.0, q) == 3.0

    @pytest.mark.parametrize("q", [0.0, 1.0, -0.1, 1.5])
    def test_quantile_bounds_rejected(self, q):
        with pytest.raises(TimingError):
            degenerate_quantile(3.0, q)

    def test_yields_stay_binary_not_nan(self):
        # The regression this guards: a single-bin histogram delay must
        # report yield exactly 0 or 1 through the degenerate step.
        from repro.engines import HistogramDelay

        dist = HistogramDelay(
            values=np.array([1e-9]), pmf=np.array([1.0])
        )
        assert dist.cdf(0.5e-9) == 0.0
        assert dist.cdf(2e-9) == 1.0
        assert dist.quantile(0.5) == 1e-9


class TestMCYieldEstimateEdges:
    """Degenerate empirical yields must stay NaN-free and clamped."""

    @pytest.mark.parametrize("y", [0.0, 1.0])
    def test_degenerate_yield_has_zero_stderr(self, y):
        est = MCYieldEstimate(timing_yield=y, n_samples=100, target_delay=1e-9)
        assert est.std_error == 0.0
        assert not math.isnan(est.std_error)
        lo, hi = est.confidence_interval()
        assert (lo, hi) == (y, y)

    def test_single_sample_estimate(self):
        est = MCYieldEstimate(timing_yield=1.0, n_samples=1, target_delay=1e-9)
        assert est.std_error == 0.0
        # One sample carries no resolution: the one-count floor makes
        # agrees_with accept any plausible analytic value (never NaN).
        assert est.agrees_with(0.5, z=3.0)
        degenerate = MCYieldEstimate(
            timing_yield=1.0, n_samples=1000, target_delay=1e-9
        )
        assert degenerate.agrees_with(0.999, z=3.0)
        assert not degenerate.agrees_with(0.9, z=3.0)


class TestEstimateTimingYieldEdges:
    """Driver edge cases: zero variance, pinned yields, n_samples=1."""

    @pytest.mark.parametrize("name", ESTIMATOR_NAMES)
    def test_zero_variance_circuit(self, c17, tech, name):
        # All process sigmas zero: every die is nominal, the yield is a
        # step function of the target, and nothing may go NaN.
        frozen = VariationModel(
            VariationSpec(sigma_l_total=0.0, sigma_vth_total=0.0),
            n_gates=c17.n_gates,
        )
        from repro.timing import run_sta

        nominal = run_sta(c17).circuit_delay
        for target, expected in ((2.0 * nominal, 1.0), (0.5 * nominal, 0.0)):
            est = estimate_timing_yield(
                c17, frozen, target, n_samples=64, seed=0, estimator=name
            )
            assert est.timing_yield == expected
            assert est.std_error == 0.0
            assert not math.isnan(est.std_error)
            assert est.n_effective == 64.0

    @pytest.mark.parametrize("name", ESTIMATOR_NAMES)
    @pytest.mark.parametrize("factor, expected", [(10.0, 1.0), (0.1, 0.0)])
    def test_pinned_yield_no_nan(self, c17, spec, name, factor, expected):
        from repro.circuit.placement import build_variation_model
        from repro.timing import run_sta

        varmodel = build_variation_model(c17, spec)
        target = factor * run_sta(c17).circuit_delay
        est = estimate_timing_yield(
            c17, varmodel, target, n_samples=128, seed=0, estimator=name
        )
        assert est.timing_yield == expected
        assert est.std_error == 0.0
        assert not math.isnan(est.std_error)
        lo, hi = est.confidence_interval()
        assert (lo, hi) == (expected, expected)

    @pytest.mark.parametrize("name", ESTIMATOR_NAMES)
    def test_single_sample(self, c17, spec, name):
        from repro.circuit.placement import build_variation_model
        from repro.timing import run_sta

        varmodel = build_variation_model(c17, spec)
        target = 1.5 * run_sta(c17).circuit_delay
        est = estimate_timing_yield(
            c17, varmodel, target, n_samples=1, seed=0, estimator=name
        )
        assert est.n_samples == 1
        assert est.timing_yield in (0.0, 1.0)
        assert not math.isnan(est.std_error)
        assert est.n_effective == 1.0

    def test_rejects_nonpositive_target(self, c17, spec):
        from repro.circuit.placement import build_variation_model

        varmodel = build_variation_model(c17, spec)
        with pytest.raises(TimingError):
            estimate_timing_yield(c17, varmodel, 0.0, n_samples=16)

    def test_rejects_mismatched_model(self, c17):
        wrong = VariationModel(
            VariationSpec(sigma_l_total=0.0, sigma_vth_total=0.0), n_gates=1
        )
        with pytest.raises(TimingError, match="variation model covers"):
            estimate_timing_yield(c17, wrong, 1e-9, n_samples=16)
