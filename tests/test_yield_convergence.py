"""MC timing yield converges to the analytic (SSTA) yield estimate.

At 20k dies the binomial standard error is ~0.35% of yield, tight
enough to see real model disagreement.  SSTA is linear in the process
variables while the MC gate-delay model keeps the quadratic term, so
the comparison sits at targets near the distribution's center where the
linearization bias is well inside the 3-sigma band; deep-tail targets
would expose the (documented, expected) quadratic-term offset rather
than an engine bug.  The seed is fixed, so the check is deterministic.
"""

import pytest

from repro.timing import MCYieldEstimate, mc_timing_yield, run_ssta

N_SAMPLES = 20_000
SEED = 7


class TestConvergence:
    @pytest.mark.parametrize("eta", [0.5, 0.8])
    def test_mc_agrees_with_analytic_within_3_sigma(
        self, rca8, varmodel_rca8, eta
    ):
        ssta = run_ssta(rca8, varmodel_rca8)
        target = ssta.circuit_delay.percentile(eta)
        analytic = ssta.timing_yield(target)
        est = mc_timing_yield(
            rca8, varmodel_rca8, target, n_samples=N_SAMPLES, seed=SEED
        )
        assert est.n_samples == N_SAMPLES
        assert est.target_delay == target
        lo, hi = est.confidence_interval()
        assert lo <= est.timing_yield <= hi
        assert est.agrees_with(analytic), (
            f"MC yield {est.timing_yield:.4f} vs analytic {analytic:.4f} "
            f"outside 3-sigma ({3 * est.std_error:.4f}) at eta={eta}"
        )

    def test_std_error_shrinks_with_samples(self, rca8, varmodel_rca8):
        ssta = run_ssta(rca8, varmodel_rca8)
        target = ssta.circuit_delay.percentile(0.8)
        small = mc_timing_yield(
            rca8, varmodel_rca8, target, n_samples=1000, seed=SEED
        )
        large = mc_timing_yield(
            rca8, varmodel_rca8, target, n_samples=N_SAMPLES, seed=SEED
        )
        assert large.std_error < small.std_error


class TestEstimateAlgebra:
    def test_confidence_interval_clamped_to_unit(self):
        est = MCYieldEstimate(timing_yield=0.999, n_samples=100, target_delay=1e-9)
        lo, hi = est.confidence_interval()
        assert 0.0 <= lo <= hi <= 1.0

    def test_degenerate_yield_keeps_error_floor(self):
        est = MCYieldEstimate(timing_yield=1.0, n_samples=1000, target_delay=1e-9)
        assert est.std_error == 0.0
        # agrees_with never divides by a zero band: the 1/N floor applies.
        assert est.agrees_with(1.0)
        assert not est.agrees_with(0.5)

    def test_three_sigma_band_width(self):
        est = MCYieldEstimate(timing_yield=0.5, n_samples=10_000, target_delay=1e-9)
        assert est.std_error == pytest.approx(0.005)
        assert est.agrees_with(0.514)
        assert not est.agrees_with(0.516)
