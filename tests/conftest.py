"""Shared fixtures.

The library object is session-scoped (its only mutation is internal
memoization); circuits are function-scoped because optimizers mutate their
implementation state in place.
"""

from __future__ import annotations

import pytest

from repro.circuit import make_benchmark, ripple_carry_adder
from repro.circuit.placement import build_variation_model
from repro.tech import Library, get_technology
from repro.variation import default_variation


@pytest.fixture(scope="session")
def tech():
    """The default (ptm100) technology preset."""
    return get_technology("ptm100")


@pytest.fixture(scope="session")
def lib(tech) -> Library:
    """A characterized default library (session-shared, read-only use)."""
    return Library(tech)


@pytest.fixture(scope="session")
def spec(tech):
    """Default variation spec for the default technology."""
    return default_variation(tech.lnom)


@pytest.fixture
def c17(lib):
    """The real (embedded) ISCAS85 c17 netlist — fresh per test."""
    return make_benchmark("c17", lib)


@pytest.fixture
def c432(lib):
    """The c432-profile clone — fresh per test."""
    return make_benchmark("c432", lib)


@pytest.fixture
def rca8(lib):
    """An 8-bit ripple-carry adder — small structured circuit."""
    return ripple_carry_adder(lib, 8)


@pytest.fixture
def varmodel_c432(c432, spec):
    """Variation model for the fresh c432 fixture."""
    return build_variation_model(c432, spec)


@pytest.fixture
def varmodel_rca8(rca8, spec):
    """Variation model for the fresh rca8 fixture."""
    return build_variation_model(rca8, spec)
