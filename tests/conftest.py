"""Shared fixtures.

The library object is session-scoped (its only mutation is internal
memoization); circuits are function-scoped because optimizers mutate their
implementation state in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import pytest
from scipy.stats import norm

from repro.circuit import make_benchmark, ripple_carry_adder
from repro.circuit.placement import build_variation_model
from repro.mcstat import (
    DelayMoments,
    EstimatorContext,
    YieldEstimate,
    get_estimator,
)
from repro.parallel import SampleShardPlan, run_sharded
from repro.tech import Library, get_technology
from repro.variation import VariationSpec, default_variation
from repro.variation.model import VariationModel


@pytest.fixture(scope="session")
def tech():
    """The default (ptm100) technology preset."""
    return get_technology("ptm100")


@pytest.fixture(scope="session")
def lib(tech) -> Library:
    """A characterized default library (session-shared, read-only use)."""
    return Library(tech)


@pytest.fixture(scope="session")
def spec(tech):
    """Default variation spec for the default technology."""
    return default_variation(tech.lnom)


@pytest.fixture
def c17(lib):
    """The real (embedded) ISCAS85 c17 netlist — fresh per test."""
    return make_benchmark("c17", lib)


@pytest.fixture
def c432(lib):
    """The c432-profile clone — fresh per test."""
    return make_benchmark("c432", lib)


@pytest.fixture
def rca8(lib):
    """An 8-bit ripple-carry adder — small structured circuit."""
    return ripple_carry_adder(lib, 8)


@pytest.fixture
def varmodel_c432(c432, spec):
    """Variation model for the fresh c432 fixture."""
    return build_variation_model(c432, spec)


@pytest.fixture
def varmodel_rca8(rca8, spec):
    """Variation model for the fresh rca8 fixture."""
    return build_variation_model(rca8, spec)


# -- statistical-correctness oracle for the mcstat estimators -----------------


@dataclass(frozen=True)
class LinearDelayKernel:
    """Analytically solvable 'circuit' for the estimator oracle.

    ``delay = mean + gs . z + delta_vth[:, 0]`` — linear in the sampled
    Gaussians, so with a variation model whose Vth deviation is purely
    independent the circuit delay is exactly
    ``N(mean, gs . gs + sigma_vth^2)`` and the yield at any target is a
    closed-form Phi.  Duck-compatible with the TimingKernel interface
    the estimators consume.
    """

    mean: float
    gs: np.ndarray
    relative_area: float = 1.0

    def delays(self, samples) -> np.ndarray:
        return self.mean + samples.z @ self.gs + samples.delta_vth[:, 0]


class EstimatorOracle:
    """Closed-form testbed shared by the estimator correctness tests.

    Wraps a :class:`LinearDelayKernel` plus the matching variation model
    and exact :class:`DelayMoments`, and runs any registered estimator
    through the real sharded execution layer — the same code path the
    timing driver uses, minus the circuit.
    """

    def __init__(
        self,
        mean: float = 1.0,
        gs: tuple = (0.3, 0.2),
        sigma_indep: float = 0.15,
    ) -> None:
        gs_arr = np.asarray(gs, dtype=float)
        self.kernel = LinearDelayKernel(mean=mean, gs=gs_arr)
        # Pure inter-die L (unused by the kernel) + pure independent Vth:
        # delta_vth[:, 0] is exactly sigma_indep * r, no global loading.
        toy_spec = VariationSpec(
            sigma_l_total=0.0,
            sigma_vth_total=sigma_indep,
            inter_fraction_l=1.0,
            spatial_fraction_l=0.0,
            inter_fraction_vth=0.0,
            spatial_fraction_vth=0.0,
        )
        self.varmodel = VariationModel(toy_spec, n_gates=1)
        self.moments = DelayMoments(
            mean=mean, global_sens=gs_arr, indep_sigma=sigma_indep
        )

    @property
    def sigma(self) -> float:
        """Exact circuit-delay standard deviation."""
        return self.moments.total_sigma

    def target_at(self, eta: float) -> float:
        """The target delay whose true yield is exactly ``eta``."""
        return self.moments.mean + self.sigma * float(norm.ppf(eta))

    def true_yield(self, target_delay: float) -> float:
        """Closed-form yield (exact, not an approximation, on this toy)."""
        return self.moments.analytic_yield(target_delay)

    def run(
        self,
        estimator: str,
        target_delay: float,
        n_samples: int,
        seed: int,
        n_jobs: int = 1,
        shard_size: Optional[int] = None,
    ) -> YieldEstimate:
        est = get_estimator(estimator)
        ctx = EstimatorContext(
            varmodel=self.varmodel,
            kernel=self.kernel,
            target_delay=target_delay,
            n_samples=n_samples,
            moments=self.moments,
        )
        size = shard_size if shard_size is not None else est.plan_shard_size(
            n_samples
        )
        plan = SampleShardPlan.build(n_samples, seed, shard_size=size)
        states = run_sharded(est.make_shard_task(ctx), plan, n_jobs=n_jobs)
        return est.finalize(states, ctx)


@pytest.fixture(scope="session")
def oracle() -> EstimatorOracle:
    """Shared closed-form estimator oracle (read-only, session-scoped)."""
    return EstimatorOracle()
