"""Metric snapshots and optimization-result objects."""

import pytest

from repro.core import OptimizerConfig, snapshot_metrics
from repro.core.result import MetricsSnapshot, OptimizationResult, PassRecord
from repro.power import analyze_leakage, signal_probabilities
from repro.tech import VthClass, slow_corner
from repro.timing import TimingView, run_sta, run_ssta


@pytest.fixture
def snapshot(c432, varmodel_c432, spec):
    view = TimingView(c432)
    config = OptimizerConfig()
    corner = slow_corner(spec, config.corner_sigma)
    target = 1.2 * run_sta(view).circuit_delay
    return snapshot_metrics(view, varmodel_c432, target, corner, config), view, target


class TestSnapshotMetrics:
    def test_fields_consistent_with_analyses(self, c432, varmodel_c432, snapshot):
        snap, view, target = snapshot
        assert snap.nominal_delay == pytest.approx(run_sta(view).circuit_delay)
        ssta = run_ssta(view, varmodel_c432)
        assert snap.mean_delay == pytest.approx(ssta.circuit_delay.mean)
        assert snap.timing_yield == pytest.approx(ssta.timing_yield(target))
        assert snap.nominal_leakage == pytest.approx(
            analyze_leakage(c432).total_power
        )

    def test_ordering_invariants(self, snapshot):
        snap, _, _ = snapshot
        # Corner is slower than nominal; statistical mean above nominal
        # leakage; p95 above mean; high-confidence point above mean.
        assert snap.corner_delay > snap.nominal_delay
        assert snap.mean_leakage > snap.nominal_leakage
        assert snap.p95_leakage > snap.mean_leakage
        assert snap.hc_leakage > snap.mean_leakage

    def test_composition_fields(self, c432, varmodel_c432, spec):
        c432.set_uniform(vth=VthClass.HIGH, size=2.0)
        view = TimingView(c432)
        config = OptimizerConfig()
        corner = slow_corner(spec, config.corner_sigma)
        snap = snapshot_metrics(
            view, varmodel_c432, 1e-8, corner, config
        )
        assert snap.high_vth_fraction == 1.0
        assert snap.total_size == pytest.approx(2.0 * c432.n_gates)


class TestOptimizationResult:
    def _make(self, before_leak, after_leak):
        def snap(leak):
            return MetricsSnapshot(
                nominal_delay=1e-9, corner_delay=1.3e-9, mean_delay=1e-9,
                sigma_delay=5e-11, timing_yield=0.95, nominal_leakage=leak * 0.9,
                mean_leakage=leak, p95_leakage=leak * 1.5, hc_leakage=leak * 1.4,
                dynamic_power=1e-4, high_vth_fraction=0.5, total_size=100.0,
            )

        from repro.circuit.netlist import GateAssignment

        assignment = GateAssignment(sizes=(1.0,), vths=(VthClass.LOW,))
        return OptimizationResult(
            optimizer="statistical",
            circuit_name="t",
            target_delay=1.1e-9,
            min_delay=1e-9,
            before=snap(before_leak),
            after=snap(after_leak),
            initial_assignment=assignment,
            final_assignment=assignment,
            passes=(PassRecord(0, 10, 5, 1, after_leak),),
            moves_applied=5,
            runtime_seconds=0.5,
        )

    def test_reduction_properties(self):
        result = self._make(10e-6, 2e-6)
        assert result.leakage_reduction == pytest.approx(0.8)
        assert result.hc_leakage_reduction == pytest.approx(0.8)

    def test_summary_contains_key_figures(self):
        result = self._make(10e-6, 2e-6)
        text = result.summary()
        assert "statistical" in text
        assert "80.0%" in text
        assert "5 moves" in text
