"""Perf pass (RPR9xx): loop-nest + hot-path analyses and the rules.

Three layers under test: trip-count classification from iterable
provenance, the span-site reachability closure with profile attribution,
and the rules themselves — including the two contracts the pass lives
by: cold code is never flagged by the hot-gated rules, and profiled
weights rank findings without ever entering baseline fingerprints.
"""

import json
import textwrap

import pytest

from repro.errors import LintError
from repro.lint import (
    LintContext,
    LintOptions,
    SpanProfile,
    fingerprint,
    run_lint,
)
from repro.lint.analysis import (
    TRIP_PER_GATE,
    TRIP_PER_SAMPLE,
    TRIP_SMALL,
    TRIP_UNKNOWN,
    CallGraph,
    HotPathAnalysis,
    LoopNestAnalysis,
    ModuleIndex,
    PackageSymbols,
)


def build_package(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, source in {"__init__.py": "", **files}.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def build_symbols(tmp_path, files):
    return PackageSymbols(ModuleIndex.load(build_package(tmp_path, files)))


# ---------------------------------------------------------------------------
# Loop-nest analysis
# ---------------------------------------------------------------------------


class TestLoopNest:
    @pytest.fixture
    def loops(self, tmp_path):
        symbols = build_symbols(tmp_path, {
            "m.py": """
                def f(n_samples, gates, samples, fanin_gates):
                    for i in range(n_samples):
                        for g in gates:
                            pass
                    n = samples.n_samples
                    for j in range(n):
                        pass
                    for k in range(8):
                        pass
                    m = opaque()
                    for i in range(m):
                        x = fanin_gates[i]
                    while samples:
                        pass
                    for batch, fanins in schedule():
                        y = fanin_gates[batch]
            """,
        })
        return LoopNestAnalysis(symbols)

    def test_range_over_sample_count_is_per_sample(self, loops):
        infos = loops.loops_in("pkg.m.f")
        assert infos[0].trip_class == TRIP_PER_SAMPLE
        assert infos[0].depth == 1
        assert infos[0].induction == ("i",)

    def test_nested_loop_over_gates_is_per_gate(self, loops):
        infos = loops.loops_in("pkg.m.f")
        assert infos[1].trip_class == TRIP_PER_GATE
        assert infos[1].depth == 2

    def test_one_level_assignment_chase(self, loops):
        # n = samples.n_samples; for j in range(n) classifies per-sample.
        infos = loops.loops_in("pkg.m.f")
        assert infos[2].trip_class == TRIP_PER_SAMPLE

    def test_small_literal_range(self, loops):
        infos = loops.loops_in("pkg.m.f")
        assert infos[3].trip_class == TRIP_SMALL

    def test_leading_index_evidence_classifies_opaque_bound(self, loops):
        # range(m) says nothing, but fanin_gates[i] marks the loop per-gate.
        infos = loops.loops_in("pkg.m.f")
        assert infos[4].trip_class == TRIP_PER_GATE

    def test_while_loop_stays_unknown(self, loops):
        infos = loops.loops_in("pkg.m.f")
        assert infos[5].kind == "while"
        assert infos[5].trip_class == TRIP_UNKNOWN

    def test_batch_index_arrays_are_not_leading_index_evidence(self, loops):
        # `for batch, fanins in schedule()` binds whole index *arrays*;
        # fanin_gates[batch] gathers a level at once — that is the
        # vectorized idiom, not per-gate iteration.  Only range/enumerate
        # provably bind scalar indices.
        infos = loops.loops_in("pkg.m.f")
        assert infos[6].trip_class == TRIP_UNKNOWN

    def test_nodes_lists_only_loop_carriers(self, tmp_path):
        symbols = build_symbols(tmp_path, {
            "m.py": """
                def loopy(samples):
                    for s in samples:
                        pass

                def flat(x):
                    return x
            """,
        })
        analysis = LoopNestAnalysis(symbols)
        assert analysis.nodes() == ("pkg.m.loopy",)


# ---------------------------------------------------------------------------
# Hot-path analysis and span profiles
# ---------------------------------------------------------------------------


HOT_SOURCE = {
    "m.py": """
        def kernel(items):
            total = 0.0
            for item in items:
                total += item
            return total

        def hot_entry(tele, items):
            with tele.span("mc.shard", shard=0):
                return kernel(items)

        def warm_entry(tele, items):
            with tele.span("opt.pass"):
                return kernel(items)

        def cold(items):
            return kernel(items)
    """,
}


class TestHotPath:
    @pytest.fixture
    def hot(self, tmp_path):
        symbols = build_symbols(tmp_path, HOT_SOURCE)
        return HotPathAnalysis(symbols, CallGraph.build(symbols))

    def test_span_sites_detected(self, hot):
        assert hot.span_names() == ("mc.shard", "opt.pass")
        assert hot.roots["mc.shard"] == ("pkg.m.hot_entry",)

    def test_closure_includes_callees(self, hot):
        assert "pkg.m.kernel" in hot.hot_nodes()
        assert "pkg.m.hot_entry" in hot.hot_nodes()

    def test_cold_function_not_hot(self, hot):
        assert "pkg.m.cold" not in hot.hot_nodes()

    def test_hot_via_names_every_reaching_span(self, hot):
        assert hot.hot_via()["pkg.m.kernel"] == ("mc.shard", "opt.pass")
        assert hot.hot_via()["pkg.m.hot_entry"] == ("mc.shard",)

    def test_attribution_without_profile_is_zero(self, hot):
        seconds = hot.attribute(None)
        assert seconds["pkg.m.kernel"] == 0.0

    def test_attribution_sums_reaching_spans(self, hot):
        profile = SpanProfile.from_totals({"mc.shard": 2.0, "opt.pass": 0.5})
        seconds = hot.attribute(profile)
        assert seconds["pkg.m.kernel"] == pytest.approx(2.5)
        assert seconds["pkg.m.hot_entry"] == pytest.approx(2.0)


class TestSpanProfile:
    def test_load_sums_span_durations(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(
            json.dumps({"type": "span", "name": "mc.shard", "dur": 1.5}) + "\n"
            + json.dumps({"type": "span", "name": "mc.shard", "dur": 0.5}) + "\n"
            + json.dumps({"type": "scalar", "name": "rss", "value": 1}) + "\n"
            + "{torn line"
        )
        profile = SpanProfile.load(trace)
        assert profile.seconds("mc.shard") == pytest.approx(2.0)
        assert profile.seconds("absent") == 0.0

    def test_missing_trace_rejected(self, tmp_path):
        with pytest.raises(LintError, match="no such profile"):
            SpanProfile.load(tmp_path / "nope.jsonl")

    def test_spanless_trace_rejected(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        trace.write_text(json.dumps({"type": "meta"}) + "\n")
        with pytest.raises(LintError, match="no span records"):
            SpanProfile.load(trace)


# ---------------------------------------------------------------------------
# The rules, end to end through the engine
# ---------------------------------------------------------------------------


RULES_SOURCE = {
    "m.py": """
        import numpy as np

        def kernel(values, n_samples, fanin_gates, sens: np.ndarray):
            total = 0.0
            for i in range(n_samples):
                buf = np.zeros(4)
                total += float(values.stats.mean) + buf[0]
            for g in range(len(fanin_gates)):
                total += sens[g]
            return total

        def hot_entry(tele, values, n_samples, fanin_gates, sens):
            with tele.span("mc.shard"):
                return kernel(values, n_samples, fanin_gates, sens)

        def batched(tele, gate_batches):
            with tele.span("mc.shard"):
                acc = np.zeros(8)
                for batch in gate_batches:
                    acc = acc + acc[batch]
                return acc

        def cold_kernel(values, n_samples):
            acc = 0.0
            for i in range(n_samples):
                acc += 1.0
            return acc

        def anywhere():
            allowed = [1, 2, 3, 4]
            hits = 0
            for x in range(1000):
                if x in allowed:
                    hits += 1
            weights = {1.0, 2.0, 3.0}
            total = 0.0
            for w in weights:
                total += w
            return hits, total
    """,
}


def run_perf(tmp_path, files, options=None):
    root = build_package(tmp_path, files)
    ctx = LintContext(source_root=root, options=options or LintOptions())
    return run_lint(ctx, passes=("perf",))


class TestPerfRules:
    @pytest.fixture
    def report(self, tmp_path):
        return run_perf(tmp_path, RULES_SOURCE)

    def codes_at(self, report, needle):
        return sorted(
            f.code for f in report.findings if needle in (f.location or "")
        )

    def test_scalar_hot_loops_flagged(self, report):
        messages = [f.message for f in report.findings if f.code == "RPR901"]
        assert any("per-sample" in m and "kernel" in m for m in messages)
        assert any("per-gate" in m for m in messages)

    def test_cold_code_never_flagged_by_hot_rules(self, report):
        assert not any(
            "cold_kernel" in f.message
            for f in report.findings
            if f.code in ("RPR901", "RPR902", "RPR903", "RPR904")
        )

    def test_alloc_in_hot_loop_flagged(self, report):
        messages = [f.message for f in report.findings if f.code == "RPR902"]
        assert any("np.zeros" in m for m in messages)

    def test_loop_invariant_chain_flagged(self, report):
        messages = [f.message for f in report.findings if f.code == "RPR903"]
        assert any("`values.stats.mean`" in m for m in messages)

    def test_elementwise_index_flagged(self, report):
        messages = [f.message for f in report.findings if f.code == "RPR904"]
        assert any("sens" in m and "induction variable g" in m for m in messages)

    def test_batch_gather_not_elementwise(self, report):
        # `batched` subscripts a proven array with a whole index batch
        # (`acc[batch]` under `for batch in gate_batches`); only scalar
        # induction variables (range/enumerate) are element-wise hazards.
        assert not any(
            "batched" in f.message
            for f in report.findings if f.code == "RPR904"
        )

    def test_quadratic_membership_flagged_anywhere(self, report):
        messages = [f.message for f in report.findings if f.code == "RPR905"]
        assert any("allowed" in m for m in messages)

    def test_unordered_set_accumulation_flagged(self, report):
        messages = [f.message for f in report.findings if f.code == "RPR906"]
        assert any("weights" in m for m in messages)

    def test_messages_name_the_reaching_spans(self, report):
        hot = [f for f in report.findings if f.code == "RPR901"]
        assert all("hot via mc.shard" in f.message for f in hot)

    def test_report_deterministic(self, tmp_path, report):
        again = run_perf(tmp_path, RULES_SOURCE)
        assert [f.to_dict() for f in again.findings] == [
            f.to_dict() for f in report.findings
        ]


class TestProfileRanking:
    @pytest.fixture
    def profiled(self, tmp_path):
        options = LintOptions(
            profile=SpanProfile.from_totals({"mc.shard": 3.25})
        )
        return run_perf(tmp_path, RULES_SOURCE, options)

    def test_hot_findings_carry_measured_weight(self, profiled):
        kernel = [f for f in profiled.findings if "kernel" in f.message]
        assert kernel and all(f.weight == pytest.approx(3.25) for f in kernel)

    def test_unprofiled_findings_weigh_nothing(self, profiled):
        cold = [f for f in profiled.findings if f.code in ("RPR905", "RPR906")]
        assert cold and all(f.weight == 0.0 for f in cold)

    def test_weighted_findings_rank_first_within_severity(self, profiled):
        warnings = [
            f for f in profiled.findings if f.severity.value == "warning"
        ]
        weights = [f.weight for f in warnings]
        assert weights == sorted(weights, reverse=True)

    def test_ranking_deterministic_for_fixed_trace(self, tmp_path, profiled):
        options = LintOptions(
            profile=SpanProfile.from_totals({"mc.shard": 3.25})
        )
        again = run_perf(tmp_path, RULES_SOURCE, options)
        assert [f.to_dict() for f in again.findings] == [
            f.to_dict() for f in profiled.findings
        ]

    def test_weight_never_enters_fingerprint_or_message(self, tmp_path, profiled):
        plain = run_perf(tmp_path, RULES_SOURCE)
        assert [fingerprint(f) for f in profiled.findings] == [
            fingerprint(f) for f in plain.findings
        ]
        assert all("3.25" not in f.message for f in profiled.findings)


class TestSuppression:
    def test_inline_pragma_suppresses_with_justification(self, tmp_path):
        report = run_perf(tmp_path, {
            "m.py": """
                def kernel(n_samples):
                    total = 0.0
                    for i in range(n_samples):  # lint: ignore[RPR901] scalar by design
                        total += 1.0
                    return total

                def hot(tele, n):
                    with tele.span("mc.run"):
                        return kernel(n)
            """,
        })
        suppressed = [f for f in report.findings if f.code == "RPR901"]
        assert len(suppressed) == 1
        assert suppressed[0].suppressed
        assert suppressed[0].justification == "scalar by design"
        assert report.exit_code(strict=True) == 0


class TestSelfLint:
    @pytest.fixture(scope="class")
    def self_report(self):
        import repro

        root = __import__("pathlib").Path(repro.__file__).parent
        return run_lint(LintContext(source_root=root), passes=("perf",))

    def test_fixed_mc_propagation_no_longer_fires(self, self_report):
        # The levelized batch rewrite of timing/mc.py was the pass's
        # top-ranked finding; it must stay fixed.
        assert not any(
            "_propagate_delays" in f.message
            for f in self_report.findings
            if not f.suppressed
        )

    def test_self_lint_yields_real_findings(self, self_report):
        # The acceptance floor: the pass finds real antipatterns in the
        # tree (triaged via fixes, pragmas, and the baseline).
        assert len(self_report.findings) >= 8
