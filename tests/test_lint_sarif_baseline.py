"""SARIF rendering, baseline files, and their CLI wiring."""

import json
import textwrap

import pytest

from repro.cli import main
from repro.errors import LintError
from repro.lint import (
    BASELINE_VERSION,
    LintContext,
    LintReport,
    apply_baseline,
    dead_entries,
    fingerprint,
    load_baseline,
    prune_baseline,
    render_sarif,
    run_lint,
    write_baseline,
)
from repro.lint.rng_rules import RULE_SET_ORDER
from repro.lint.units_rules import RULE_UNIT_MIXING

BAD_BENCH = "INPUT(a)\nINPUT(unused)\nOUTPUT(y)\ny = NAND(a, a)\n"


def units_fixture_report(tmp_path):
    """A report with one active RPR501 and one suppressed RPR501."""
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    (root / "bad.py").write_text(textwrap.dedent("""
        def total(delay_ps, delay_ns):
            return delay_ps + delay_ns

        def compare(delay_ps, leakage_nw):
            return delay_ps > leakage_nw  # lint: ignore[RPR501] fixture
    """))
    return run_lint(LintContext(source_root=root), passes=("units",))


# -- SARIF --------------------------------------------------------------------


class TestSarif:
    def test_document_shape(self, tmp_path):
        report = units_fixture_report(tmp_path)
        doc = json.loads(render_sarif(report))
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        [run] = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        [rule] = driver["rules"]
        assert rule["id"] == "RPR501"
        assert rule["name"] == "unit-mixing"
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] == "error"
        assert len(run["results"]) == 2

    def test_result_physical_location(self, tmp_path):
        doc = json.loads(render_sarif(units_fixture_report(tmp_path)))
        result = doc["runs"][0]["results"][0]
        assert result["ruleId"] == "RPR501"
        assert result["ruleIndex"] == 0
        assert result["level"] == "error"
        [location] = result["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "pkg/bad.py"
        assert physical["region"]["startLine"] == 3

    def test_suppressed_finding_carries_in_source_suppression(self, tmp_path):
        doc = json.loads(render_sarif(units_fixture_report(tmp_path)))
        suppressed = [
            r for r in doc["runs"][0]["results"] if "suppressions" in r
        ]
        [result] = suppressed
        [suppression] = result["suppressions"]
        assert suppression["kind"] == "inSource"
        assert suppression["justification"] == "fixture"

    def test_non_file_location_lands_in_message(self):
        finding = RULE_UNIT_MIXING.finding("mixed units", location="net n42")
        report = LintReport(findings=(finding,), passes=("units",))
        doc = json.loads(render_sarif(report))
        [result] = doc["runs"][0]["results"]
        assert "locations" not in result
        assert result["message"]["text"] == "mixed units (at net n42)"

    def test_severity_level_mapping(self):
        from repro.errors import DiagnosticSeverity
        from repro.lint.reporters import _SARIF_LEVEL

        assert _SARIF_LEVEL[DiagnosticSeverity.ERROR] == "error"
        assert _SARIF_LEVEL[DiagnosticSeverity.WARNING] == "warning"
        assert _SARIF_LEVEL[DiagnosticSeverity.INFO] == "note"

    def test_cli_lint_self_sarif_parses(self, capsys):
        assert main(["lint", "--self", "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"


# -- baseline -----------------------------------------------------------------


class TestFingerprint:
    def test_ignores_line_numbers(self):
        a = RULE_SET_ORDER.finding("msg", location="pkg/a.py:10")
        b = RULE_SET_ORDER.finding("msg", location="pkg/a.py:99")
        assert fingerprint(a) == fingerprint(b)

    def test_distinguishes_message_file_and_code(self):
        base = RULE_SET_ORDER.finding("msg", location="pkg/a.py:10")
        assert fingerprint(
            RULE_SET_ORDER.finding("other", location="pkg/a.py:10")
        ) != fingerprint(base)
        assert fingerprint(
            RULE_SET_ORDER.finding("msg", location="pkg/b.py:10")
        ) != fingerprint(base)
        assert fingerprint(
            RULE_UNIT_MIXING.finding("msg", location="pkg/a.py:10")
        ) != fingerprint(base)

    def test_non_file_location_kept_verbatim(self):
        finding = RULE_UNIT_MIXING.finding("msg", location="net n42")
        assert fingerprint(finding) == "RPR501::net n42::msg"


class TestBaselineRoundTrip:
    def test_write_then_apply_silences_exactly_the_frozen_findings(
        self, tmp_path
    ):
        report = units_fixture_report(tmp_path)
        assert report.exit_code() == 1
        path = tmp_path / "baseline.json"
        count = write_baseline(report, path)
        assert count == 1  # the suppressed finding is not frozen
        rebaselined = apply_baseline(report, load_baseline(path))
        assert rebaselined.exit_code(strict=True) == 0
        frozen = [
            f for f in rebaselined.findings
            if f.justification == "frozen in baseline"
        ]
        assert len(frozen) == 1

    def test_new_finding_still_fails(self, tmp_path):
        report = units_fixture_report(tmp_path)
        write_baseline(report, tmp_path / "baseline.json")
        entries = load_baseline(tmp_path / "baseline.json")
        # Same fixture plus one new violation in another file.
        root = tmp_path / "pkg"
        (root / "worse.py").write_text(
            "def f(delay_ps, cap_pf):\n    return delay_ps - cap_pf\n"
        )
        fresh = run_lint(LintContext(source_root=root), passes=("units",))
        rebaselined = apply_baseline(fresh, entries)
        assert rebaselined.exit_code() == 1
        active = rebaselined.active()
        assert len(active) == 1
        assert active[0].location.startswith("pkg/worse.py")

    def test_file_format(self, tmp_path):
        report = units_fixture_report(tmp_path)
        path = tmp_path / "baseline.json"
        write_baseline(report, path)
        payload = json.loads(path.read_text())
        assert payload["version"] == BASELINE_VERSION
        [entry] = payload["entries"]
        assert entry.startswith("RPR501::pkg/bad.py::")
        assert ":3" not in entry  # line-free


class TestBaselineErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(LintError, match="does not exist"):
            load_baseline(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(LintError, match="not valid JSON"):
            load_baseline(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(LintError, match="version"):
            load_baseline(path)

    def test_non_string_entries(self, tmp_path):
        path = tmp_path / "mixed.json"
        path.write_text(json.dumps({"version": 1, "entries": [1, "ok"]}))
        with pytest.raises(LintError, match="must be strings"):
            load_baseline(path)


class TestDeadEntries:
    def test_live_baseline_has_no_dead_entries(self, tmp_path):
        report = units_fixture_report(tmp_path)
        path = tmp_path / "baseline.json"
        write_baseline(report, path)
        assert dead_entries(load_baseline(path), report) == []

    def test_fixed_finding_reported_dead(self, tmp_path):
        report = units_fixture_report(tmp_path)
        path = tmp_path / "baseline.json"
        write_baseline(report, path)
        # "fix" the violation: re-lint a clean tree
        root = tmp_path / "pkg"
        (root / "bad.py").write_text("def total(x):\n    return x\n")
        clean = run_lint(LintContext(source_root=root), passes=("units",))
        [(entry, reason)] = dead_entries(load_baseline(path), clean)
        assert entry.startswith("RPR501::")
        assert reason == "no current finding matches"

    def test_unknown_rule_reported(self, tmp_path):
        report = units_fixture_report(tmp_path)
        dead = dead_entries(
            frozenset(["RPR999::pkg/bad.py::gone"]), report
        )
        [(entry, reason)] = dead
        assert "RPR999 is not registered" in reason

    def test_malformed_entry_reported(self, tmp_path):
        report = units_fixture_report(tmp_path)
        [(_, reason)] = dead_entries(frozenset(["not-a-fingerprint"]), report)
        assert "malformed" in reason

    def test_vanished_file_reported(self, tmp_path):
        report = units_fixture_report(tmp_path)
        dead = dead_entries(
            frozenset(["RPR501::pkg/deleted.py::old message"]),
            report,
            source_root=tmp_path / "pkg",
        )
        [(_, reason)] = dead
        assert "pkg/deleted.py no longer exists" in reason

    def test_prune_rewrites_only_when_dirty(self, tmp_path):
        report = units_fixture_report(tmp_path)
        path = tmp_path / "baseline.json"
        write_baseline(report, path)
        before = path.read_text()
        kept, removed = prune_baseline(path, report)
        assert (kept, removed) == (1, [])
        assert path.read_text() == before  # untouched when clean
        # inject a dead entry, prune must drop exactly it
        payload = json.loads(before)
        payload["entries"].append("RPR501::pkg/ghost.py::never existed")
        path.write_text(json.dumps(payload))
        kept, removed = prune_baseline(path, report)
        assert kept == 1
        [(entry, _)] = removed
        assert "ghost" in entry
        assert load_baseline(path) == frozenset(json.loads(before)["entries"])


# -- CLI wiring ---------------------------------------------------------------


class TestCli:
    def test_write_then_consume_baseline(self, tmp_path, capsys):
        bench = tmp_path / "bad.bench"
        bench.write_text(BAD_BENCH)
        baseline = tmp_path / "baseline.json"
        # Warnings fail under --strict ...
        assert main(["lint", str(bench), "--strict"]) == 1
        capsys.readouterr()
        # ... until frozen into a baseline ...
        assert main(
            ["lint", str(bench), "--write-baseline", "--baseline", str(baseline)]
        ) == 0
        assert "wrote baseline" in capsys.readouterr().out
        # ... after which the same run passes strict.
        assert main(
            ["lint", str(bench), "--baseline", str(baseline), "--strict"]
        ) == 0
        assert "frozen in baseline" in capsys.readouterr().out

    def test_missing_baseline_file_fails(self, tmp_path, capsys):
        assert main(
            ["lint", "c17", "--baseline", str(tmp_path / "nope.json")]
        ) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_paths_narrows_self_lint_reporting(self, capsys):
        import repro
        from pathlib import Path

        circuit_dir = Path(repro.__file__).parent / "circuit"
        assert main([
            "lint", "--self", "--format", "json",
            "--paths", str(circuit_dir),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        for finding in payload["findings"]:
            assert finding["location"].startswith("repro/circuit/")

    def test_baseline_verify_and_prune_subcommands(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", "--self", "--write-baseline", "--baseline", str(baseline),
        ]) == 0
        capsys.readouterr()
        assert main([
            "lint", "baseline", "verify", "--baseline", str(baseline),
        ]) == 0
        assert "still match" in capsys.readouterr().out
        # a dead entry fails verify, prune drops it, verify passes again
        payload = json.loads(baseline.read_text())
        payload["entries"].append("RPR801::repro/ghost.py::never existed")
        baseline.write_text(json.dumps(payload))
        assert main([
            "lint", "baseline", "verify", "--baseline", str(baseline),
        ]) == 1
        out = capsys.readouterr().out
        assert "ghost" in out and "no longer exists" in out
        assert main([
            "lint", "baseline", "prune", "--baseline", str(baseline),
        ]) == 0
        assert "pruned 1" in capsys.readouterr().out
        assert main([
            "lint", "baseline", "verify", "--baseline", str(baseline),
        ]) == 0

    def test_jobs_with_circuit_rejected(self, capsys):
        assert main(["lint", "c17", "--jobs", "2"]) == 1
        assert "--jobs" in capsys.readouterr().err

    def test_jobs_output_matches_serial(self, capsys):
        assert main(["lint", "--self", "--format", "json",
                     "--passes", "concurrency"]) == 0
        serial = capsys.readouterr().out
        assert main(["lint", "--self", "--format", "json",
                     "--passes", "concurrency", "--jobs", "3"]) == 0
        assert capsys.readouterr().out == serial

    def test_effects_summary(self, capsys):
        assert main(["lint", "--effects", "runner.run_sharded"]) == 0
        out = capsys.readouterr().out
        assert "repro.parallel.runner.run_sharded:" in out
        assert "does-io" in out

    def test_effects_unknown_function_fails(self, capsys):
        assert main(["lint", "--effects", "nope_not_a_function"]) == 1
        assert "no call-graph node" in capsys.readouterr().err
