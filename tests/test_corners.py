"""Process corners built from a variation spec."""

import pytest

from repro.tech import fast_corner, slow_corner, typical_corner
from repro.variation import VariationSpec


@pytest.fixture
def vspec():
    return VariationSpec(sigma_l_total=5e-9, sigma_vth_total=0.018)


def test_typical_is_zero():
    corner = typical_corner()
    assert corner.delta_l == 0.0
    assert corner.delta_vth0 == 0.0


def test_slow_corner_signs(vspec):
    corner = slow_corner(vspec, 3.0)
    assert corner.delta_l == pytest.approx(15e-9)
    assert corner.delta_vth0 == pytest.approx(0.054)


def test_fast_corner_signs(vspec):
    corner = fast_corner(vspec, 3.0)
    assert corner.delta_l == pytest.approx(-15e-9)
    assert corner.delta_vth0 == pytest.approx(-0.054)


def test_corner_uses_total_sigma(vspec):
    # Corner pessimism double-counts intra-die variance: the corner is
    # built from the *total* sigma regardless of the split.
    uncorrelated = vspec.without_correlation()
    assert slow_corner(vspec).delta_l == pytest.approx(
        slow_corner(uncorrelated).delta_l
    )


def test_corner_names(vspec):
    assert slow_corner(vspec, 3.0).name == "SS3"
    assert fast_corner(vspec, 2.5).name == "FF2.5"


def test_zero_sigma_corner_is_nominal(vspec):
    corner = slow_corner(vspec, 0.0)
    assert corner.delta_l == 0.0
    assert corner.delta_vth0 == 0.0
