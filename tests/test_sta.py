"""Deterministic STA: arrivals, slacks, critical paths, corners."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.errors import TimingError
from repro.tech import VthClass, slow_corner, typical_corner
from repro.timing import TimingConfig, TimingView, corner_delay_factor, run_sta


@pytest.fixture
def chain(lib):
    c = Circuit("chain", lib)
    c.add_input("a")
    prev = "a"
    for i in range(5):
        c.add_gate(f"g{i}", "INV", [prev])
        prev = f"g{i}"
    c.add_output(prev)
    return c


class TestArrivals:
    def test_chain_delay_is_sum_of_gate_delays(self, chain):
        view = TimingView(chain)
        sta = run_sta(view)
        assert sta.circuit_delay == pytest.approx(sta.gate_delays.sum())

    def test_arrivals_monotone_along_chain(self, chain):
        sta = run_sta(chain)
        assert np.all(np.diff(sta.arrivals) > 0)

    def test_parallel_paths_take_max(self, lib):
        c = Circuit("y", lib)
        c.add_input("a")
        c.add_gate("fast", "INV", ["a"])
        c.add_gate("slow1", "INV", ["a"])
        c.add_gate("slow2", "INV", ["slow1"])
        c.add_gate("join", "NAND2", ["fast", "slow2"])
        c.add_output("join")
        view = TimingView(c)
        sta = run_sta(view)
        i_join = c.gate_index("join")
        i_slow2 = c.gate_index("slow2")
        assert sta.arrivals[i_join] == pytest.approx(
            sta.arrivals[i_slow2] + sta.gate_delays[i_join]
        )

    def test_critical_path_ends_at_worst_output(self, c432):
        sta = run_sta(c432)
        last = sta.critical_path[-1]
        assert last in c432.outputs or not c432.fanout_of(last)
        # Path is connected and topologically ordered.
        for up, down in zip(sta.critical_path, sta.critical_path[1:]):
            assert up in c432.gate(down).fanins


class TestSlacks:
    def test_default_target_zero_worst_slack(self, c432):
        sta = run_sta(c432)
        assert sta.worst_slack == pytest.approx(0.0, abs=1e-18)
        assert sta.meets_target

    def test_relaxed_target_positive_slack(self, c432):
        base = run_sta(c432)
        relaxed = run_sta(c432, target_delay=1.2 * base.circuit_delay)
        assert relaxed.worst_slack > 0
        assert relaxed.meets_target

    def test_critical_path_gates_have_min_slack(self, c432):
        sta = run_sta(c432)
        for name in sta.critical_path:
            assert sta.slacks[c432.gate_index(name)] == pytest.approx(
                0.0, abs=1e-16
            )

    def test_infeasible_target_detected(self, c432):
        base = run_sta(c432)
        tight = run_sta(c432, target_delay=0.5 * base.circuit_delay)
        assert not tight.meets_target
        assert tight.worst_slack < 0

    def test_invalid_target_rejected(self, c432):
        with pytest.raises(TimingError):
            run_sta(c432, target_delay=-1.0)


class TestImplementationSensitivity:
    def test_high_vth_slows_circuit(self, c432):
        nominal = run_sta(c432).circuit_delay
        c432.set_uniform(vth=VthClass.HIGH)
        slowed = run_sta(c432).circuit_delay
        assert slowed > nominal * 1.1

    def test_view_reads_live_state(self, c432):
        view = TimingView(c432)
        before = run_sta(view).circuit_delay
        c432.set_uniform(vth=VthClass.HIGH)
        after = run_sta(view).circuit_delay
        assert after > before


class TestCorners:
    def test_slow_corner_slows(self, c432, spec):
        nominal = run_sta(c432).circuit_delay
        cornered = run_sta(c432, corner=slow_corner(spec)).circuit_delay
        assert cornered > nominal * 1.1

    def test_typical_corner_is_nominal(self, c432):
        assert run_sta(c432, corner=typical_corner()).circuit_delay == pytest.approx(
            run_sta(c432).circuit_delay
        )

    def test_corner_factor_uniform_per_class(self, c432, spec):
        view = TimingView(c432)
        factors = corner_delay_factor(view, slow_corner(spec))
        assert all(f > 1.0 for f in factors.values())


class TestLoads:
    def test_po_load_config(self, c432):
        light = run_sta(c432, config=TimingConfig(primary_output_load=1.0))
        heavy = run_sta(c432, config=TimingConfig(primary_output_load=16.0))
        assert heavy.circuit_delay > light.circuit_delay

    def test_load_includes_fanout_wire_cap(self, lib, chain):
        view = TimingView(chain)
        idx = chain.gate_index("g0")
        load = view.load_cap_of(idx)
        consumer = view.cells[chain.gate_index("g1")]
        expected = consumer.input_cap(1.0) + lib.tech.wire_cap_per_fanout
        assert load == pytest.approx(expected)
