"""Placement and the circuit -> variation-model bridge."""

import numpy as np
import pytest

from repro.circuit import Placement, build_variation_model, place_circuit
from repro.errors import PlacementError
from repro.variation import SpatialCorrelationModel, VariationSpec


class TestPlaceCircuit:
    def test_positions_inside_die(self, c432):
        placement = place_circuit(c432, die_size=1e-3)
        assert placement.n_gates == c432.n_gates
        assert placement.positions.min() >= 0
        assert placement.positions.max() <= 1e-3

    def test_topological_locality(self, c432):
        # Consecutive gates in topological order sit within one pitch.
        placement = place_circuit(c432, die_size=1e-3)
        side = int(np.ceil(np.sqrt(c432.n_gates)))
        pitch = 1e-3 / side
        deltas = np.linalg.norm(np.diff(placement.positions, axis=0), axis=1)
        assert deltas.max() <= pitch * 1.01

    def test_random_method_seeded(self, c432):
        a = place_circuit(c432, method="random", seed=3)
        b = place_circuit(c432, method="random", seed=3)
        c = place_circuit(c432, method="random", seed=4)
        assert np.allclose(a.positions, b.positions)
        assert not np.allclose(a.positions, c.positions)

    def test_unknown_method_rejected(self, c432):
        with pytest.raises(PlacementError, match="unknown placement method"):
            place_circuit(c432, method="analytic")

    def test_placement_validation(self):
        with pytest.raises(PlacementError):
            Placement(die_size=-1.0, positions=np.zeros((3, 2)))
        with pytest.raises(PlacementError):
            Placement(die_size=1.0, positions=np.zeros((3, 3)))
        with pytest.raises(PlacementError):
            Placement(die_size=1.0, positions=np.full((3, 2), 2.0))

    def test_cells_assignment(self, c432):
        placement = place_circuit(c432, die_size=1e-3)
        spatial = SpatialCorrelationModel(4, 1e-3, 5e-4)
        cells = placement.cells(spatial)
        assert cells.shape == (c432.n_gates,)
        assert cells.min() >= 0 and cells.max() < 16


class TestBuildVariationModel:
    def test_default_build(self, c432, spec):
        vm = build_variation_model(c432, spec)
        assert vm.n_gates == c432.n_gates
        assert vm.n_globals >= 2

    def test_uncorrelated_spec_skips_spatial(self, c432, spec):
        vm = build_variation_model(c432, spec.without_correlation())
        assert vm.n_globals == 2  # only the (zero-loading) inter-die slots
        assert np.allclose(vm.l_loadings, 0.0)

    def test_nearby_gates_more_correlated(self, c432, spec):
        vm = build_variation_model(c432, spec)
        near = vm.l_correlation(0, 1)
        far = vm.l_correlation(0, c432.n_gates - 1)
        assert near >= far

    def test_total_variance_preserved(self, c432, spec):
        vm = build_variation_model(c432, spec)
        var = vm.l_loadings[0] @ vm.l_loadings[0] + vm.l_indep**2
        assert var == pytest.approx(spec.sigma_l_total**2, rel=0.02)

    def test_mismatched_placement_rejected(self, c432, rca8, spec):
        placement = place_circuit(rca8)
        with pytest.raises(PlacementError, match="placement covers"):
            build_variation_model(c432, spec, placement=placement)
