"""Greedy engine mechanics with a scripted strategy."""

import pytest

from repro.core import GreedyEngine, OptimizerConfig
from repro.core.engine import ConstraintStrategy
from repro.errors import InfeasibleConstraintError, OptimizationError
from repro.power import gate_input_probabilities, signal_probabilities
from repro.timing import TimingView, run_sta


class BudgetStrategy(ConstraintStrategy):
    """Feasible while nominal delay stays under a budget; objective is
    nominal leakage.  Exercises the engine without SSTA machinery."""

    name = "budget"

    def __init__(self, view, budget):
        self.view = view
        self.budget = budget
        self.analyze_calls = 0
        self.feasibility_calls = 0

    def analyze(self):
        self.analyze_calls += 1
        return run_sta(self.view, target_delay=self.budget)

    def is_feasible(self):
        self.feasibility_calls += 1
        return run_sta(self.view).circuit_delay <= self.budget

    def objective(self):
        from repro.power import gate_leakage_currents

        return float(gate_leakage_currents(self.view.circuit).sum())

    def move_allowed(self, state, move, delay_cost):
        return delay_cost <= state.slacks[move.index]

    def move_cost(self, state, move, delay_cost):
        return delay_cost


@pytest.fixture
def view(c432):
    return TimingView(c432)


@pytest.fixture
def gate_probs(c432):
    return gate_input_probabilities(c432, signal_probabilities(c432))


def test_infeasible_start_raises(view, gate_probs):
    base = run_sta(view).circuit_delay
    strategy = BudgetStrategy(view, 0.5 * base)
    engine = GreedyEngine(view, strategy, OptimizerConfig(), gate_probs)
    with pytest.raises(InfeasibleConstraintError):
        engine.run()


def test_reduces_objective_and_respects_budget(view, gate_probs):
    base = run_sta(view).circuit_delay
    budget = 1.3 * base
    strategy = BudgetStrategy(view, budget)
    engine = GreedyEngine(view, strategy, OptimizerConfig(), gate_probs)
    before = strategy.objective()
    records, applied = engine.run()
    after = strategy.objective()
    assert applied > 0
    assert after < before
    assert run_sta(view).circuit_delay <= budget * (1 + 1e-12)


def test_objective_monotone_across_passes(view, gate_probs):
    base = run_sta(view).circuit_delay
    strategy = BudgetStrategy(view, 1.2 * base)
    engine = GreedyEngine(view, strategy, OptimizerConfig(), gate_probs)
    records, _ = engine.run()
    objectives = [r.objective for r in records]
    assert all(a >= b - 1e-18 for a, b in zip(objectives, objectives[1:]))


def test_pass_records_are_consistent(view, gate_probs):
    base = run_sta(view).circuit_delay
    strategy = BudgetStrategy(view, 1.2 * base)
    engine = GreedyEngine(view, strategy, OptimizerConfig(min_chunk=4), gate_probs)
    records, applied = engine.run()
    assert sum(r.applied for r in records) == applied
    for r in records:
        assert r.candidates >= r.applied
        assert r.reverted >= 0


def test_tight_budget_yields_few_moves(view, gate_probs):
    base = run_sta(view).circuit_delay
    tight = BudgetStrategy(view, 1.001 * base)
    engine = GreedyEngine(view, tight, OptimizerConfig(), gate_probs)
    _, applied_tight = engine.run()

    # Rebuild at a looser budget on a fresh circuit state.
    view.circuit.set_uniform(size=1.0)
    from repro.tech import VthClass

    view.circuit.set_uniform(vth=VthClass.LOW)
    loose = BudgetStrategy(view, 1.5 * base)
    engine = GreedyEngine(view, loose, OptimizerConfig(), gate_probs)
    _, applied_loose = engine.run()
    assert applied_loose > applied_tight


def test_max_passes_bounds_work(view, gate_probs):
    base = run_sta(view).circuit_delay
    strategy = BudgetStrategy(view, 1.3 * base)
    engine = GreedyEngine(
        view, strategy, OptimizerConfig(max_passes=2), gate_probs
    )
    records, _ = engine.run()
    assert len(records) <= 2
