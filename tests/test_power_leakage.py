"""Deterministic leakage analysis."""

import numpy as np
import pytest

from repro.power import (
    analyze_leakage,
    gate_leakage_currents,
    leakage_by_vth_class,
    signal_probabilities,
)
from repro.tech import VthClass, fast_corner, slow_corner


class TestGateCurrents:
    def test_positive_everywhere(self, c432):
        currents = gate_leakage_currents(c432)
        assert currents.shape == (c432.n_gates,)
        assert np.all(currents > 0)

    def test_matches_cell_tables(self, c17):
        probs = signal_probabilities(c17)
        currents = gate_leakage_currents(c17, probs)
        for gate in c17.indexed_gates():
            cell = c17.cell_of(gate)
            expected = cell.mean_leakage(
                gate.size, gate.vth, [probs[f] for f in gate.fanins]
            )
            assert currents[c17.gate_index(gate.name)] == pytest.approx(expected)

    def test_all_high_vth_cuts_total(self, c432):
        low = gate_leakage_currents(c432).sum()
        c432.set_uniform(vth=VthClass.HIGH)
        high = gate_leakage_currents(c432).sum()
        assert high < low / 10

    def test_size_scales_leakage(self, c432):
        base = gate_leakage_currents(c432).sum()
        c432.set_uniform(size=2.0)
        doubled = gate_leakage_currents(c432).sum()
        assert doubled == pytest.approx(2 * base, rel=1e-9)


class TestCorners:
    def test_fast_corner_leaks_more(self, c432, spec):
        nominal = analyze_leakage(c432).total_power
        fast = analyze_leakage(c432, corner=fast_corner(spec)).total_power
        slow = analyze_leakage(c432, corner=slow_corner(spec)).total_power
        assert fast > nominal * 3
        assert slow < nominal / 3

    def test_corner_factor_uniform(self, c432, spec):
        nominal = gate_leakage_currents(c432)
        fast = gate_leakage_currents(c432, corner=fast_corner(spec))
        ratios = fast / nominal
        assert np.allclose(ratios, ratios[0], rtol=1e-9)


class TestBreakdown:
    def test_total_power_is_current_times_vdd(self, c432, lib):
        breakdown = analyze_leakage(c432)
        assert breakdown.total_power == pytest.approx(
            breakdown.total_current * lib.tech.vdd
        )

    def test_by_vth_class_partitions_total(self, c432):
        # Mix the flavours, then check the split sums to the total.
        for i, gate in enumerate(c432.gates()):
            if i % 3 == 0:
                gate.vth = VthClass.HIGH
        breakdown = analyze_leakage(c432)
        split = leakage_by_vth_class(c432, breakdown)
        assert split["low"] + split["high"] == pytest.approx(breakdown.total_power)
        assert split["high"] > 0
