"""VariationModel: loadings, RDF de-rating, and sampling statistics."""

import numpy as np
import pytest

from repro.errors import VariationError
from repro.variation import (
    SpatialCorrelationModel,
    VariationModel,
    VariationSpec,
)


@pytest.fixture
def vspec():
    return VariationSpec(sigma_l_total=5e-9, sigma_vth_total=0.018)


@pytest.fixture
def spatial(vspec):
    return SpatialCorrelationModel(vspec.grid_dim, 2e-3, vspec.correlation_length)


@pytest.fixture
def model(vspec, spatial):
    cells = np.arange(50) % spatial.n_cells
    return VariationModel(vspec, 50, gate_cells=cells, spatial=spatial)


class TestConstruction:
    def test_loading_shapes(self, model):
        assert model.l_loadings.shape == (50, model.n_globals)
        assert model.vth_loadings.shape == (50, model.n_globals)

    def test_factor_layout(self, model, vspec):
        # Column 0: inter-die L; column 1: inter-die Vth; rest: spatial PCs.
        assert np.allclose(model.l_loadings[:, 0], vspec.sigma_l_inter)
        assert np.allclose(model.l_loadings[:, 1], 0.0)
        assert np.allclose(model.vth_loadings[:, 1], vspec.sigma_vth_inter)
        assert np.allclose(model.vth_loadings[:, 0], 0.0)
        assert np.allclose(model.vth_loadings[:, 2:], 0.0)  # RDF not spatial

    def test_spatial_required_when_fraction_nonzero(self, vspec):
        with pytest.raises(VariationError, match="spatial"):
            VariationModel(vspec, 10)

    def test_no_spatial_needed_when_uncorrelated(self, vspec):
        flat = vspec.without_correlation()
        model = VariationModel(flat, 10)
        assert model.n_globals == 2
        assert model.l_indep == pytest.approx(flat.sigma_l_total)

    def test_gate_cells_validation(self, vspec, spatial):
        with pytest.raises(VariationError):
            VariationModel(vspec, 5, gate_cells=np.array([0, 1]), spatial=spatial)
        with pytest.raises(VariationError):
            VariationModel(
                vspec, 2, gate_cells=np.array([0, 99]), spatial=spatial
            )


class TestRdfDerating:
    def test_area_scaling(self, model):
        base = model.vth_indep_for(1.0)
        quad = model.vth_indep_for(4.0)
        assert np.allclose(quad, base / 2.0)

    def test_per_gate_areas(self, model):
        areas = np.linspace(1.0, 8.0, 50)
        sigmas = model.vth_indep_for(areas)
        assert sigmas.shape == (50,)
        assert np.all(np.diff(sigmas) <= 0)

    def test_rejects_nonpositive_area(self, model):
        with pytest.raises(VariationError):
            model.vth_indep_for(0.0)


class TestSampling:
    def test_shapes(self, model):
        rng = np.random.default_rng(0)
        z, dl, dv = model.sample(300, rng)
        assert z.shape == (300, model.n_globals)
        assert dl.shape == (300, 50)
        assert dv.shape == (300, 50)

    def test_marginal_sigmas_match_spec(self, model, vspec):
        rng = np.random.default_rng(1)
        _, dl, dv = model.sample(20000, rng)
        assert dl.std() == pytest.approx(vspec.sigma_l_total, rel=0.03)
        assert dv.std() == pytest.approx(vspec.sigma_vth_total, rel=0.03)

    def test_cross_gate_correlation(self, model):
        # Gates in the same grid cell share inter-die + spatial components.
        rng = np.random.default_rng(2)
        _, dl, _ = model.sample(20000, rng)
        same_cell = np.corrcoef(dl[:, 0], dl[:, 16])[0, 1]  # both cell 0
        expected = model.l_correlation(0, 16)
        assert same_cell == pytest.approx(expected, abs=0.03)

    def test_sample_count_validated(self, model):
        with pytest.raises(VariationError):
            model.sample(0, np.random.default_rng(0))

    def test_deterministic_per_seed(self, model):
        z1, dl1, _ = model.sample(10, np.random.default_rng(5))
        z2, dl2, _ = model.sample(10, np.random.default_rng(5))
        assert np.allclose(z1, z2)
        assert np.allclose(dl1, dl2)
