"""Exception hierarchy: every library error is catchable as ReproError."""

import pytest

from repro import errors


ALL_ERRORS = (
    errors.TechnologyError,
    errors.LibraryError,
    errors.NetlistError,
    errors.BenchFormatError,
    errors.TimingError,
    errors.VariationError,
    errors.PowerError,
    errors.OptimizationError,
    errors.InfeasibleConstraintError,
    errors.PlacementError,
    errors.CampaignError,
)


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_bench_format_is_a_netlist_error():
    assert issubclass(errors.BenchFormatError, errors.NetlistError)


def test_infeasible_is_an_optimization_error():
    assert issubclass(errors.InfeasibleConstraintError, errors.OptimizationError)


def test_single_catch_covers_library_failures(lib):
    from repro.circuit import Circuit

    with pytest.raises(errors.ReproError):
        Circuit("", lib)
    with pytest.raises(errors.ReproError):
        lib.cell("NOPE")


def test_errors_carry_messages():
    err = errors.TimingError("arrival underflow at gate g42")
    assert "g42" in str(err)
