"""Clark max/min moment formulas against closed forms and Monte Carlo."""

import math

import numpy as np
import pytest

from repro.timing import max_moments, min_moments, norm_cdf, norm_pdf


class TestNormalHelpers:
    def test_cdf_symmetry(self):
        assert norm_cdf(0.0) == pytest.approx(0.5)
        assert norm_cdf(1.0) + norm_cdf(-1.0) == pytest.approx(1.0)

    def test_cdf_known_point(self):
        assert norm_cdf(1.6448536) == pytest.approx(0.95, abs=1e-6)

    def test_pdf_peak(self):
        assert norm_pdf(0.0) == pytest.approx(1.0 / math.sqrt(2 * math.pi))


class TestMaxMoments:
    def test_iid_standard_normals(self):
        # E[max(A,B)] = 1/sqrt(pi), Var = 1 - 1/pi for iid N(0,1).
        mean, var, tightness = max_moments(0.0, 1.0, 0.0, 1.0, 0.0)
        assert mean == pytest.approx(1.0 / math.sqrt(math.pi))
        assert var == pytest.approx(1.0 - 1.0 / math.pi)
        assert tightness == pytest.approx(0.5)

    def test_dominant_operand(self):
        mean, var, tightness = max_moments(10.0, 1.0, 0.0, 1.0, 0.0)
        assert mean == pytest.approx(10.0, abs=1e-6)
        assert var == pytest.approx(1.0, abs=1e-4)
        assert tightness == pytest.approx(1.0, abs=1e-6)

    def test_perfectly_correlated_equal_variance(self):
        # theta = 0 branch: max is whichever mean is larger.
        mean, var, tightness = max_moments(3.0, 2.0, 1.0, 2.0, 2.0)
        assert mean == 3.0
        assert var == 2.0
        assert tightness == 1.0
        mean, var, tightness = max_moments(1.0, 2.0, 3.0, 2.0, 2.0)
        assert mean == 3.0
        assert tightness == 0.0

    def test_against_monte_carlo_correlated(self):
        rng = np.random.default_rng(3)
        rho = 0.6
        cov = np.array([[1.0, rho * 1.5], [rho * 1.5, 2.25]])
        samples = rng.multivariate_normal([0.5, 0.0], cov, size=400000)
        maxes = samples.max(axis=1)
        mean, var, _ = max_moments(0.5, 1.0, 0.0, 2.25, rho * 1.5)
        assert mean == pytest.approx(maxes.mean(), abs=0.01)
        assert var == pytest.approx(maxes.var(), rel=0.02)

    def test_symmetry_in_arguments(self):
        m1, v1, t1 = max_moments(1.0, 2.0, 3.0, 1.0, 0.5)
        m2, v2, t2 = max_moments(3.0, 1.0, 1.0, 2.0, 0.5)
        assert m1 == pytest.approx(m2)
        assert v1 == pytest.approx(v2)
        assert t1 == pytest.approx(1.0 - t2)

    def test_max_at_least_each_mean(self):
        mean, _, _ = max_moments(1.0, 0.5, 1.2, 0.7, 0.1)
        assert mean >= 1.2


class TestMinMoments:
    def test_duality_with_max(self):
        mean_min, var_min, _ = min_moments(0.0, 1.0, 0.0, 1.0, 0.0)
        assert mean_min == pytest.approx(-1.0 / math.sqrt(math.pi))
        assert var_min == pytest.approx(1.0 - 1.0 / math.pi)

    def test_dominant_operand(self):
        mean, _, tightness = min_moments(-5.0, 1.0, 5.0, 1.0, 0.0)
        assert mean == pytest.approx(-5.0, abs=1e-6)
        assert tightness == pytest.approx(1.0, abs=1e-6)
