"""Technology (RPR2xx) and config (RPR3xx) lint rules.

Technology violations are injected two ways: corrupting a *copy* of a
frozen Technology via ``object.__setattr__`` (bypassing its constructor
validation — the lint pass exists precisely for objects that dodge it),
and a minimal fake library whose cells misbehave on demand.  The cached
presets and the session ``lib`` fixture are never mutated.
"""

import copy
from dataclasses import replace

import numpy as np
import pytest

from repro.core import OptimizerConfig
from repro.core.annealing import AnnealConfig
from repro.lint import LintContext, LintOptions, run_lint
from repro.units import nm, ps


def _codes(report):
    return {f.code for f in report.findings}


def _corrupt(tech, **fields):
    """A field-corrupted copy of a frozen Technology, validation bypassed."""
    bad = copy.copy(tech)
    for name, value in fields.items():
        object.__setattr__(bad, name, value)
    return bad


class _FakeCell:
    """Stand-in cell with dial-a-violation leakage/delay behavior."""

    def __init__(self, leak_low=1e-7, leak_high=1e-8, size_slope=1.0,
                 load_slope=1e3, vth_delay_penalty=1e-11):
        self.leak = {"low": leak_low, "high": leak_high}
        self.size_slope = size_slope
        self.load_slope = load_slope
        self.vth_delay_penalty = vth_delay_penalty

    def leakage_by_state(self, size, vth):
        return np.full(4, self.mean_leakage(size, vth))

    def mean_leakage(self, size, vth):
        return self.leak[vth.value] * (1.0 + self.size_slope * (size - 1.0))

    def delay(self, size, load, vth):
        base = ps(10.0) + self.load_slope * load
        return base + (self.vth_delay_penalty if vth.value == "high" else 0.0)


class _FakeLib:
    def __init__(self, tech, cell, fo4=ps(40.0)):
        self.tech = tech
        self.sizes = (1.0, 2.0, 4.0)
        self.c_in_unit = 1e-15
        self._cell = cell
        self._fo4 = fo4

    def cell_names(self):
        return ("FAKE",)

    def cell(self, name):
        return self._cell

    def fo4_delay(self):
        return self._fo4


def _tech_report(lib):
    return run_lint(LintContext(library=lib), passes=("technology",))


class TestTechnologyRules:
    def test_real_library_is_clean(self, lib):
        report = _tech_report(lib)
        assert report.n_errors == 0
        assert report.n_warnings == 0

    def test_rpr201_inverted_vth_pair(self, tech):
        bad = _corrupt(tech, vth_low=0.35, vth_high=0.15)
        report = _tech_report(_FakeLib(bad, _FakeCell()))
        assert "RPR201" in _codes(report)
        assert report.n_errors >= 1

    def test_rpr201_vth_above_vdd(self, tech):
        bad = _corrupt(tech, vth_high=tech.vdd + 0.1)
        assert "RPR201" in _codes(_tech_report(_FakeLib(bad, _FakeCell())))

    def test_rpr202_low_vth_not_leakier(self, tech):
        cell = _FakeCell(leak_low=1e-9, leak_high=1e-8)
        assert "RPR202" in _codes(_tech_report(_FakeLib(tech, cell)))

    def test_rpr202_nonpositive_leakage(self, tech):
        cell = _FakeCell(leak_low=0.0)
        assert "RPR202" in _codes(_tech_report(_FakeLib(tech, cell)))

    def test_rpr203_leakage_shrinks_with_size(self, tech):
        cell = _FakeCell(size_slope=-0.2)
        assert "RPR203" in _codes(_tech_report(_FakeLib(tech, cell)))

    def test_rpr204_delay_drops_with_load(self, tech):
        cell = _FakeCell(load_slope=-1e3)
        assert "RPR204" in _codes(_tech_report(_FakeLib(tech, cell)))

    def test_rpr205_high_vth_faster_than_low(self, tech):
        cell = _FakeCell(vth_delay_penalty=-ps(5.0))
        assert "RPR205" in _codes(_tech_report(_FakeLib(tech, cell)))

    def test_rpr206_celsius_temperature_slip(self, tech):
        bad = _corrupt(tech, temperature=25.0)
        report = _tech_report(_FakeLib(bad, _FakeCell()))
        hits = [f for f in report.findings if f.code == "RPR206"]
        assert hits and "temperature" in hits[0].message

    def test_rpr206_nm_as_meters_slip(self, tech):
        bad = _corrupt(tech, lnom=100.0)  # "100" meant nm, passed as m
        assert "RPR206" in _codes(_tech_report(_FakeLib(bad, _FakeCell())))

    def test_rpr206_narrow_vth_separation(self, tech):
        bad = _corrupt(tech, vth_high=tech.vth_low + 0.02)
        hits = [
            f for f in _tech_report(_FakeLib(bad, _FakeCell())).findings
            if f.code == "RPR206"
        ]
        assert any("separation" in f.message for f in hits)

    def test_rpr207_fo4_out_of_band(self, tech):
        slow = _FakeLib(tech, _FakeCell(), fo4=1e-6)
        assert "RPR207" in _codes(_tech_report(slow))

    def test_rpr207_band_is_configurable(self, lib):
        report = run_lint(
            LintContext(
                library=lib,
                options=LintOptions(fo4_min=ps(0.1), fo4_max=ps(1.0)),
            ),
            passes=("technology",),
        )
        assert "RPR207" in _codes(report)


def _config_report(config=None, **ctx_kwargs):
    ctx = LintContext(config=config or OptimizerConfig(), **ctx_kwargs)
    return run_lint(ctx, passes=("config",))


class TestConfigRules:
    def test_default_config_is_clean(self):
        report = _config_report()
        assert report.findings == ()

    def test_rpr301_low_yield_target(self):
        report = _config_report(OptimizerConfig(yield_target=0.3))
        assert "RPR301" in _codes(report)

    def test_rpr301_extreme_yield_target(self):
        report = _config_report(OptimizerConfig(yield_target=0.999999))
        assert "RPR301" in _codes(report)

    def test_rpr302_objective_vs_constraint_percentile(self):
        report = _config_report(OptimizerConfig(confidence_k=0.0))
        assert "RPR302" in _codes(report)

    def test_rpr303_chunk_floor_swallows_circuit(self, c17):
        config = OptimizerConfig(min_chunk=1000)
        report = _config_report(config, circuit=c17)
        assert "RPR303" in _codes(report)
        # Without a circuit the rule cannot fire.
        assert "RPR303" not in _codes(_config_report(config))

    def test_rpr304_sigma_l_beyond_first_order(self, lib, spec):
        wild = replace(spec, sigma_l_total=0.3 * lib.tech.lnom)
        report = _config_report(spec=wild, library=lib)
        assert "RPR304" in _codes(report)

    def test_rpr304_sigma_vth_beyond_first_order(self, spec):
        wild = replace(spec, sigma_vth_total=0.080)
        report = _config_report(spec=wild)
        assert "RPR304" in _codes(report)

    def test_rpr304_defaults_are_in_band(self, lib, spec):
        report = _config_report(spec=spec, library=lib)
        assert "RPR304" not in _codes(report)

    def test_rpr305_off_grid_cap(self):
        config = OptimizerConfig(
            enable_lbias=True, lbias_step=nm(2.0), lbias_max=nm(5.0)
        )
        report = _config_report(config)
        assert "RPR305" in _codes(report)

    def test_rpr305_cap_beyond_rolloff_regime(self, lib):
        config = OptimizerConfig(
            enable_lbias=True, lbias_step=nm(10.0), lbias_max=nm(30.0)
        )
        report = _config_report(config, library=lib)
        assert "RPR305" in _codes(report)

    def test_rpr305_silent_when_disabled(self):
        report = _config_report(OptimizerConfig(enable_lbias=False))
        assert "RPR305" not in _codes(report)

    def test_rpr306_degenerate_schedule(self):
        anneal = AnnealConfig(steps=50, t_start=2.0, t_end=1.5)
        report = _config_report(anneal=anneal)
        hits = [f for f in report.findings if f.code == "RPR306"]
        assert len(hits) == 3  # too hot, too short, barely cools

    def test_rpr306_default_schedule_is_clean(self):
        report = _config_report(anneal=AnnealConfig())
        assert "RPR306" not in _codes(report)

    def test_rpr307_impossible_target(self, c17):
        before = c17.assignment()
        report = _config_report(circuit=c17, target_delay=ps(1.0))
        hits = [f for f in report.findings if f.code == "RPR307"]
        assert hits and hits[0].severity.value == "error"
        # The feasibility probe must restore the implementation state.
        assert c17.assignment() == before

    def test_rpr307_generous_target_is_feasible(self, c17):
        report = _config_report(circuit=c17, target_delay=1.0)
        assert "RPR307" not in _codes(report)
