"""Canonical hashing: stable across runs, sensitive to what matters."""

import json
import subprocess
import sys

import numpy as np
import pytest

import importlib

# The package re-exports the fingerprint *function* under the same name
# as the submodule; fetch the module object itself for monkeypatching.
fp = importlib.import_module("repro.campaign.fingerprint")
from repro.campaign.fingerprint import (  # noqa: E402
    canonical_json,
    canonical_payload,
    circuit_fingerprint,
    config_fingerprint,
)
from repro.core import OptimizerConfig
from repro.errors import CampaignError
from repro.tech.technology import VthClass


class TestCanonicalPayload:
    def test_mapping_keys_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_insertion_order_is_neutralized(self):
        assert canonical_json({"x": 1, "y": 2}) == canonical_json({"y": 2, "x": 1})

    def test_sets_are_sorted(self):
        assert canonical_payload({"zeta", "alpha", "mid"}) == [
            "alpha", "mid", "zeta"
        ]
        assert canonical_payload(frozenset({3, 1, 2})) == [1, 2, 3]

    def test_nan_and_inf_rejected(self):
        with pytest.raises(CampaignError):
            canonical_payload(float("nan"))
        with pytest.raises(CampaignError):
            canonical_payload({"x": float("inf")})

    def test_negative_zero_normalized(self):
        assert canonical_json(-0.0) == canonical_json(0.0)
        assert fp.fingerprint(-0.0) == fp.fingerprint(0.0)

    def test_numpy_scalars_and_arrays(self):
        assert canonical_payload(np.float64(1.5)) == 1.5
        assert canonical_payload(np.int64(7)) == 7
        assert canonical_payload(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_enum_by_qualified_name(self):
        assert canonical_payload(VthClass.LOW) == "VthClass.LOW"

    def test_non_string_mapping_keys_rejected(self):
        with pytest.raises(CampaignError):
            canonical_payload({1: "x"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(CampaignError):
            canonical_payload(object())

    def test_dataclass_embeds_type_name(self):
        payload = canonical_payload(OptimizerConfig())
        assert payload["__dataclass__"] == "OptimizerConfig"
        assert "yield_target" in payload


class TestFingerprint:
    def test_deterministic_within_process(self):
        obj = {"a": [1, 2.5], "b": {"x", "y"}}
        assert fp.fingerprint(obj) == fp.fingerprint(obj)

    def test_salt_separates_purposes(self):
        obj = {"a": 1}
        assert fp.fingerprint(obj, salt="one") != fp.fingerprint(obj, salt="two")

    def test_version_salt(self, monkeypatch):
        before = fp.fingerprint({"a": 1})
        monkeypatch.setattr(fp, "FINGERPRINT_VERSION", fp.FINGERPRINT_VERSION + 1)
        assert fp.fingerprint({"a": 1}) != before

    def test_stable_across_hash_randomization(self):
        # Set/dict iteration order depends on PYTHONHASHSEED; the canonical
        # encoder must neutralize it so store keys survive restarts.
        snippet = (
            "from repro.campaign.fingerprint import fingerprint\n"
            "print(fingerprint({'names': {'c17', 'c432', 'c880'},"
            " 'flags': frozenset({'a', 'b'})}))\n"
        )
        import os
        from pathlib import Path

        src = Path(__file__).resolve().parents[1] / "src"
        digests = set()
        for seed in ("0", "1", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(src)
            proc = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True, env=env,
            )
            digests.add(proc.stdout.strip())
        assert len(digests) == 1

    def test_canonical_json_is_valid_json(self):
        text = canonical_json({"k": [1, {"n": 2.0}], "s": {"b", "a"}})
        assert json.loads(text) == {"k": [1, {"n": 2.0}], "s": ["a", "b"]}


class TestSubjectFingerprints:
    def test_circuit_fingerprint_reflects_assignment(self, c17):
        before = circuit_fingerprint(c17)
        assignment = c17.assignment()
        sizes = list(assignment.sizes)
        sizes[0] *= 2.0
        c17.apply_assignment(
            type(assignment)(
                sizes=tuple(sizes),
                vths=assignment.vths,
                length_biases=assignment.length_biases,
            )
        )
        assert circuit_fingerprint(c17) != before

    def test_same_benchmark_rebuilt_same_fingerprint(self, lib):
        from repro.circuit import make_benchmark

        a = make_benchmark("c17", lib)
        b = make_benchmark("c17", lib)
        assert circuit_fingerprint(a) == circuit_fingerprint(b)

    def test_config_fingerprint_sensitivity(self):
        base = config_fingerprint(OptimizerConfig())
        changed = config_fingerprint(OptimizerConfig(yield_target=0.9))
        assert base != changed

    def test_config_fingerprint_rejects_non_dataclass(self):
        with pytest.raises(CampaignError):
            config_fingerprint({"yield_target": 0.9})
