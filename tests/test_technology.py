"""Technology presets and the Technology dataclass invariants."""

import dataclasses

import pytest

from repro.errors import TechnologyError
from repro.tech import (
    ChannelType,
    Technology,
    VthClass,
    available_technologies,
    get_technology,
)


def test_presets_available():
    names = available_technologies()
    assert "ptm100" in names
    assert "ptm130" in names
    assert "ptm70" in names


def test_default_preset_is_ptm100():
    assert get_technology().name == "ptm100"


def test_unknown_preset_raises():
    with pytest.raises(TechnologyError, match="unknown technology"):
        get_technology("ptm9999")


def test_vth_ordering_enforced():
    tech = get_technology()
    with pytest.raises(TechnologyError):
        dataclasses.replace(tech, vth_low=0.4, vth_high=0.3)


def test_vth_must_stay_below_vdd():
    tech = get_technology()
    with pytest.raises(TechnologyError):
        dataclasses.replace(tech, vth_high=tech.vdd + 0.1)


def test_alpha_range_enforced():
    tech = get_technology()
    with pytest.raises(TechnologyError):
        dataclasses.replace(tech, alpha=2.5)
    with pytest.raises(TechnologyError):
        dataclasses.replace(tech, alpha=0.9)


def test_geometry_must_be_positive():
    tech = get_technology()
    with pytest.raises(TechnologyError):
        dataclasses.replace(tech, lnom=-1e-9)
    with pytest.raises(TechnologyError):
        dataclasses.replace(tech, tox=0.0)


def test_nominal_vth_flavours():
    tech = get_technology()
    low_n = tech.nominal_vth(VthClass.LOW, ChannelType.NMOS)
    high_n = tech.nominal_vth(VthClass.HIGH, ChannelType.NMOS)
    assert high_n > low_n
    # PMOS offset applies to both flavours.
    low_p = tech.nominal_vth(VthClass.LOW, ChannelType.PMOS)
    assert low_p == pytest.approx(low_n + tech.pmos_vth_offset)


def test_mobility_by_channel():
    tech = get_technology()
    assert tech.mobility(ChannelType.NMOS) > tech.mobility(ChannelType.PMOS)


def test_gate_cap_per_width_exceeds_overlap():
    tech = get_technology()
    assert tech.gate_cap_per_width > tech.cap_overlap_per_width


def test_subthreshold_swing_band():
    # Realistic swings are ~70-110 mV/decade.
    tech = get_technology()
    assert 0.07 < tech.subthreshold_swing < 0.11


def test_at_temperature_returns_copy():
    tech = get_technology()
    hot = tech.at_temperature(398.15)
    assert hot.temperature == pytest.approx(398.15)
    assert tech.temperature != hot.temperature
    assert hot.thermal_voltage > tech.thermal_voltage


def test_scaled_supply_returns_copy():
    tech = get_technology()
    low = tech.scaled_supply(1.0)
    assert low.vdd == pytest.approx(1.0)
    assert tech.vdd != low.vdd


def test_vthclass_other():
    assert VthClass.LOW.other() is VthClass.HIGH
    assert VthClass.HIGH.other() is VthClass.LOW


def test_technology_is_frozen():
    tech = get_technology()
    with pytest.raises(dataclasses.FrozenInstanceError):
        tech.vdd = 2.0  # type: ignore[misc]


def test_nodes_scale_sensibly():
    # Smaller nodes: shorter channels, thinner oxide, lower vdd, leakier.
    t130, t100, t70 = (get_technology(n) for n in ("ptm130", "ptm100", "ptm70"))
    assert t130.lnom > t100.lnom > t70.lnom
    assert t130.tox > t100.tox > t70.tox
    assert t130.vdd > t100.vdd > t70.vdd
    assert t130.vth_low > t100.vth_low > t70.vth_low
