"""Benchmark registry: specs, determinism, and profile fidelity."""

import pytest

from repro.circuit import (
    FULL_SUITE,
    ISCAS85_SPECS,
    MEDIUM_SUITE,
    SMALL_SUITE,
    benchmark_names,
    benchmark_spec,
    benchmark_suite,
    make_benchmark,
)
from repro.errors import NetlistError


def test_registry_contents():
    names = benchmark_names()
    assert "c17" in names
    assert "c6288" in names
    assert len(names) == len(ISCAS85_SPECS)


def test_suites_are_subsets():
    names = set(benchmark_names())
    assert set(SMALL_SUITE) <= names
    assert set(MEDIUM_SUITE) <= names
    assert set(FULL_SUITE) <= names
    assert "c17" not in FULL_SUITE  # too trivial for the evaluation table


def test_unknown_benchmark_raises():
    with pytest.raises(NetlistError, match="unknown benchmark"):
        benchmark_spec("c99999")


def test_c17_is_the_real_netlist(lib):
    c = make_benchmark("c17", lib)
    assert c.n_gates == 6
    assert all(g.cell_name == "NAND2" for g in c.gates())


def test_c6288_is_a_multiplier(lib):
    c = make_benchmark("c6288", lib)
    spec = benchmark_spec("c6288")
    assert len(c.inputs) == spec.n_inputs
    assert len(c.outputs) == spec.n_outputs


@pytest.mark.parametrize("name", SMALL_SUITE)
def test_clone_profiles_close_to_spec(lib, name):
    spec = benchmark_spec(name)
    c = make_benchmark(name, lib)
    assert len(c.inputs) == spec.n_inputs
    assert len(c.outputs) == spec.n_outputs
    assert abs(c.n_gates - spec.n_gates) <= 0.25 * spec.n_gates
    assert abs(c.depth - spec.depth) <= max(6, 0.3 * spec.depth)


def test_make_benchmark_deterministic(lib):
    a = make_benchmark("c432", lib)
    b = make_benchmark("c432", lib)
    assert [g.fanins for g in a.gates()] == [g.fanins for g in b.gates()]


def test_benchmark_suite_builds_named_subset(lib):
    suite = benchmark_suite(lib, names=("c17", "c432"))
    assert set(suite) == {"c17", "c432"}
    assert suite["c432"].n_gates > suite["c17"].n_gates
