"""Canonical first-order form arithmetic."""

import math

import numpy as np
import pytest

from repro.errors import TimingError
from repro.timing import Canonical, maximum_of


def make(mean, sens, indep):
    return Canonical(mean, np.asarray(sens, dtype=float), indep)


class TestMoments:
    def test_variance_combines_parts(self):
        c = make(1.0, [0.3, 0.4], 0.5)
        assert c.variance == pytest.approx(0.09 + 0.16 + 0.25)
        assert c.sigma == pytest.approx(math.sqrt(0.5))

    def test_covariance_through_globals_only(self):
        a = make(0.0, [1.0, 0.0], 0.7)
        b = make(0.0, [0.5, 2.0], 0.9)
        assert a.covariance(b) == pytest.approx(0.5)

    def test_constant(self):
        c = Canonical.constant(3.0, 4)
        assert c.mean == 3.0
        assert c.sigma == 0.0
        assert c.cdf(3.1) == 1.0
        assert c.cdf(2.9) == 0.0

    def test_cdf_and_percentile_consistent(self):
        c = make(10.0, [1.0], 1.0)
        x = c.percentile(0.83)
        assert c.cdf(x) == pytest.approx(0.83, abs=1e-9)

    def test_percentile_bounds(self):
        c = make(0.0, [1.0], 0.0)
        with pytest.raises(TimingError):
            c.percentile(0.0)

    def test_negative_indep_rejected(self):
        with pytest.raises(TimingError):
            make(0.0, [0.0], -0.1)


class TestArithmetic:
    def test_shift_and_scale(self):
        c = make(2.0, [0.5], 0.5)
        assert c.shifted(1.0).mean == 3.0
        assert c.shifted(1.0).sigma == pytest.approx(c.sigma)
        doubled = c.scaled(2.0)
        assert doubled.mean == 4.0
        assert doubled.sigma == pytest.approx(2 * c.sigma)

    def test_sum_exact(self):
        a = make(1.0, [0.3, 0.0], 0.4)
        b = make(2.0, [0.1, 0.2], 0.3)
        s = a.plus(b)
        assert s.mean == 3.0
        assert np.allclose(s.sens, [0.4, 0.2])
        assert s.indep == pytest.approx(math.hypot(0.4, 0.3))

    def test_sum_variance_includes_correlation(self):
        a = make(0.0, [1.0], 0.0)
        b = make(0.0, [1.0], 0.0)
        s = a.plus(b)
        # Perfectly correlated: Var(A+B) = 4, not 2.
        assert s.variance == pytest.approx(4.0)


class TestMaximum:
    def test_max_of_identical_is_identity_like(self):
        a = make(5.0, [1.0], 0.0)
        m = a.maximum(a)
        assert m.mean == pytest.approx(5.0)
        assert m.sigma == pytest.approx(1.0)

    def test_max_dominant(self):
        a = make(100.0, [0.1], 0.1)
        b = make(0.0, [0.1], 0.1)
        m, tightness = a.maximum_with_tightness(b)
        assert m.mean == pytest.approx(100.0)
        assert tightness == pytest.approx(1.0)

    def test_max_exceeds_means(self):
        a = make(1.0, [0.5], 0.2)
        b = make(1.0, [0.0], 0.5)
        m = a.maximum(b)
        assert m.mean > 1.0

    def test_sensitivity_blend(self):
        a = make(0.0, [1.0, 0.0], 0.0)
        b = make(0.0, [0.0, 1.0], 0.0)
        m, tightness = a.maximum_with_tightness(b)
        assert tightness == pytest.approx(0.5)
        assert np.allclose(m.sens, [0.5, 0.5])
        # Residual variance lands in the independent part.
        assert m.indep > 0

    def test_max_against_monte_carlo(self):
        rng = np.random.default_rng(9)
        a = make(1.0, [0.5, 0.2], 0.3)
        b = make(1.1, [0.1, 0.4], 0.2)
        z = rng.standard_normal((200000, 2))
        sa = 1.0 + z @ np.array([0.5, 0.2]) + 0.3 * rng.standard_normal(200000)
        sb = 1.1 + z @ np.array([0.1, 0.4]) + 0.2 * rng.standard_normal(200000)
        maxes = np.maximum(sa, sb)
        m = a.maximum(b)
        assert m.mean == pytest.approx(maxes.mean(), abs=0.01)
        assert m.sigma == pytest.approx(maxes.std(), rel=0.03)

    def test_maximum_of_list(self):
        cs = [make(float(i), [0.1], 0.1) for i in range(5)]
        m = maximum_of(cs)
        assert m.mean >= 4.0

    def test_maximum_of_empty_rejected(self):
        with pytest.raises(TimingError):
            maximum_of([])

    def test_maximum_of_single_is_identity(self):
        c = make(2.0, [0.3], 0.1)
        m = maximum_of([c])
        assert m.mean == c.mean
        assert m.sigma == c.sigma


class TestDegenerateEdges:
    """Zero-variance canonicals must answer exactly, never NaN."""

    def test_constant_percentile_is_the_point(self):
        c = Canonical.constant(2.0, 3)
        for q in (0.01, 0.5, 0.99):
            assert c.percentile(q) == 2.0
            assert not math.isnan(c.percentile(q))

    def test_constant_cdf_step_at_mean(self):
        c = Canonical.constant(1.0, 1)
        assert c.cdf(1.0) == 1.0  # right-continuous step
        assert c.cdf(1.0 - 1e-9) == 0.0

    def test_max_of_constants_picks_larger(self):
        a = Canonical.constant(1.0, 2)
        b = Canonical.constant(3.0, 2)
        m, tightness = a.maximum_with_tightness(b)
        assert m.mean == 3.0
        assert m.sigma == 0.0
        assert tightness == 0.0

    def test_tied_constants_blend_cleanly(self):
        a = Canonical.constant(1.0, 2)
        m = a.maximum(a)
        assert m.mean == 1.0
        assert m.sigma == 0.0
        assert not math.isnan(m.mean)
