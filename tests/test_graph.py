"""TimingView: index structures and live-state reads."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.errors import TimingError
from repro.timing import TimingConfig, TimingView


@pytest.fixture
def diamond(lib):
    c = Circuit("diamond", lib)
    c.add_input("a")
    c.add_gate("top", "INV", ["a"])
    c.add_gate("l", "INV", ["top"])
    c.add_gate("r", "BUF", ["top"])
    c.add_gate("join", "NAND2", ["l", "r"])
    c.add_output("join")
    return c


class TestStructure:
    def test_fanin_indices(self, diamond):
        view = TimingView(diamond)
        i_join = diamond.gate_index("join")
        fanins = set(int(f) for f in view.fanin_gates[i_join])
        assert fanins == {diamond.gate_index("l"), diamond.gate_index("r")}

    def test_input_fanins_omitted(self, diamond):
        view = TimingView(diamond)
        i_top = diamond.gate_index("top")
        assert view.fanin_gates[i_top].size == 0
        assert view.has_input_fanin[i_top]

    def test_consumer_pins(self, diamond):
        view = TimingView(diamond)
        i_top = diamond.gate_index("top")
        consumers = set(int(c) for c in view.consumer_pins[i_top])
        assert consumers == {diamond.gate_index("l"), diamond.gate_index("r")}

    def test_primary_output_flags(self, diamond):
        view = TimingView(diamond)
        po = view.primary_output_indices()
        assert list(po) == [diamond.gate_index("join")]

    def test_output_must_be_driven_by_gate(self, lib):
        c = Circuit("bad", lib)
        c.add_input("a")
        c.add_gate("g", "INV", ["a"])
        c.add_output("a")  # PO is a primary input
        with pytest.raises(TimingError, match="no gate drives"):
            TimingView(c)


class TestLiveState:
    def test_loads_follow_consumer_sizes(self, diamond):
        view = TimingView(diamond)
        i_top = diamond.gate_index("top")
        before = view.load_cap_of(i_top)
        diamond.gate("l").size = 4.0
        after = view.load_cap_of(i_top)
        assert after > before

    def test_po_load_configurable(self, diamond, lib):
        heavy = TimingView(diamond, TimingConfig(primary_output_load=10.0))
        light = TimingView(diamond, TimingConfig(primary_output_load=1.0))
        i_join = diamond.gate_index("join")
        delta = heavy.load_cap_of(i_join) - light.load_cap_of(i_join)
        assert delta == pytest.approx(9.0 * lib.c_in_unit)

    def test_delay_coefficient_cache_consistent(self, diamond):
        view = TimingView(diamond)
        i = diamond.gate_index("join")
        a = view.delay_coefficients(i)
        b = view.delay_coefficients(i)
        assert a == b
        diamond.gate("join").size = 2.0
        c = view.delay_coefficients(i)
        assert c != a  # new (cell, size, vth) key

    def test_rdf_relative_area_modes(self, diamond):
        diamond.set_uniform(size=4.0)
        derated = TimingView(diamond, TimingConfig(derate_rdf_with_size=True))
        flat = TimingView(diamond, TimingConfig(derate_rdf_with_size=False))
        assert np.allclose(derated.rdf_relative_area(), 4.0)
        assert np.allclose(flat.rdf_relative_area(), 1.0)

    def test_sizes_and_vths_live(self, diamond):
        from repro.tech import VthClass

        view = TimingView(diamond)
        diamond.set_uniform(size=3.0, vth=VthClass.HIGH)
        assert np.allclose(view.sizes(), 3.0)
        assert all(v is VthClass.HIGH for v in view.vths())
