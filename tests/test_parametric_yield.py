"""Joint (delay, leakage) parametric yield: MC vs analytic."""

import pytest

from repro.analysis import analytic_parametric_yield, mc_parametric_yield
from repro.errors import PowerError, TimingError
from repro.power import analyze_statistical_leakage
from repro.timing import run_ssta


@pytest.fixture(scope="module")
def setup():
    from repro.analysis import prepare

    return prepare("c432")


@pytest.fixture(scope="module")
def operating_point(setup):
    ssta = run_ssta(setup.circuit, setup.varmodel)
    leak = analyze_statistical_leakage(setup.circuit, setup.varmodel)
    return {
        "tmax": ssta.circuit_delay.percentile(0.90),
        "cap": leak.percentile_power(0.90),
    }


class TestMonteCarlo:
    def test_marginals_near_design_points(self, setup, operating_point):
        py = mc_parametric_yield(
            setup.circuit, setup.varmodel,
            operating_point["tmax"], operating_point["cap"],
            n_samples=4000, seed=3,
        )
        assert py.timing_yield == pytest.approx(0.90, abs=0.03)
        assert py.leakage_yield == pytest.approx(0.90, abs=0.03)

    def test_joint_below_independence(self, setup, operating_point):
        # Fast dies are leaky: delay and leakage caps anti-correlate, so
        # the joint yield is *below* the independence product.
        py = mc_parametric_yield(
            setup.circuit, setup.varmodel,
            operating_point["tmax"], operating_point["cap"],
            n_samples=4000, seed=3,
        )
        assert py.correlation < -0.5
        assert py.independence_gap < -0.01

    def test_input_validation(self, setup):
        with pytest.raises(TimingError):
            mc_parametric_yield(setup.circuit, setup.varmodel, 0.0, 1.0)
        with pytest.raises(PowerError):
            mc_parametric_yield(setup.circuit, setup.varmodel, 1e-9, -1.0)


class TestAnalytic:
    def test_matches_monte_carlo(self, setup, operating_point):
        mc = mc_parametric_yield(
            setup.circuit, setup.varmodel,
            operating_point["tmax"], operating_point["cap"],
            n_samples=6000, seed=5,
        )
        analytic = analytic_parametric_yield(
            setup.circuit, setup.varmodel,
            operating_point["tmax"], operating_point["cap"],
        )
        assert analytic.timing_yield == pytest.approx(mc.timing_yield, abs=0.03)
        assert analytic.leakage_yield == pytest.approx(mc.leakage_yield, abs=0.04)
        assert analytic.joint_yield == pytest.approx(mc.joint_yield, abs=0.05)
        assert analytic.correlation == pytest.approx(mc.correlation, abs=0.15)

    def test_loose_caps_give_unity_yield(self, setup, operating_point):
        py = analytic_parametric_yield(
            setup.circuit, setup.varmodel,
            operating_point["tmax"] * 3, operating_point["cap"] * 30,
        )
        assert py.joint_yield > 0.999

    def test_negative_correlation_by_physics(self, setup, operating_point):
        py = analytic_parametric_yield(
            setup.circuit, setup.varmodel,
            operating_point["tmax"], operating_point["cap"],
        )
        assert py.correlation < -0.3
