"""The units-propagation pass (RPR5xx) on corrupted fixture packages."""

import textwrap

import pytest

from repro.lint import LintContext, run_lint

#: Conversion helpers the fixture package's ``units.py`` defines — the
#: pass trusts their summaries by name, bodies are irrelevant.
UNITS_MODULE = """
    def ps(x):
        return x * 1e-12

    def ns(x):
        return x * 1e-9

    def to_ps(x):
        return x * 1e12

    def to_nw(x):
        return x * 1e9
"""


def lint_units(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, source in {"__init__.py": "", "units.py": UNITS_MODULE, **files}.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint(LintContext(source_root=root), passes=("units",))


def by_code(report, code):
    return [f for f in report.findings if f.code == code]


class TestUnitMixing:
    def test_arithmetic_across_scales_fires(self, tmp_path):
        report = lint_units(tmp_path, {"bad.py": """
            def total(delay_ps, delay_ns):
                return delay_ps + delay_ns
        """})
        [finding] = by_code(report, "RPR501")
        assert not finding.suppressed
        assert "time[ps]" in finding.message and "time[ns]" in finding.message
        assert finding.location == "pkg/bad.py:3"

    def test_comparison_across_units_fires(self, tmp_path):
        report = lint_units(tmp_path, {"bad.py": """
            def worse(delay_ps, leakage_nw):
                return delay_ps > leakage_nw
        """})
        [finding] = by_code(report, "RPR501")
        assert "comparison" in finding.message

    def test_interprocedural_two_hop_summary(self, tmp_path):
        """A to_ps() two calls away still clashes with a *_ns value."""
        report = lint_units(tmp_path, {
            "a.py": """
                from .units import to_ps

                def converted(delay):
                    return to_ps(delay)
            """,
            "b.py": """
                from .a import converted

                def relay(delay):
                    return converted(delay)
            """,
            "c.py": """
                from .b import relay

                def clash(delay_ns):
                    return relay(0.0) + delay_ns
            """,
        })
        [finding] = by_code(report, "RPR501")
        assert finding.location == "pkg/c.py:5"
        assert "time[ps]" in finding.message and "time[ns]" in finding.message

    def test_pragma_suppresses(self, tmp_path):
        report = lint_units(tmp_path, {"bad.py": """
            def total(delay_ps, delay_ns):
                return delay_ps + delay_ns  # lint: ignore[RPR501] cross-scale on purpose
        """})
        [finding] = by_code(report, "RPR501")
        assert finding.suppressed
        assert finding.justification == "cross-scale on purpose"
        assert report.exit_code() == 0

    def test_same_unit_arithmetic_is_clean(self, tmp_path):
        report = lint_units(tmp_path, {"good.py": """
            def total(delay_ps, other_ps):
                margin = 2.0
                return (delay_ps + other_ps) * margin
        """})
        assert report.findings == ()


class TestDoubleConversion:
    def test_out_of_si_on_converted_value_fires(self, tmp_path):
        report = lint_units(tmp_path, {"bad.py": """
            from .units import to_ps

            def report(delay_ps):
                return to_ps(delay_ps)
        """})
        [finding] = by_code(report, "RPR502")
        assert "converted twice" in finding.message
        assert finding.location == "pkg/bad.py:5"

    def test_into_si_on_unit_bearing_value_fires(self, tmp_path):
        report = lint_units(tmp_path, {"bad.py": """
            from .units import ps

            def to_si(delay_ps):
                return ps(delay_ps)
        """})
        [finding] = by_code(report, "RPR502")
        assert "already carries time[ps]" in finding.message

    def test_pragma_suppresses(self, tmp_path):
        report = lint_units(tmp_path, {"bad.py": """
            from .units import to_ps

            def report(delay_ps):
                return to_ps(delay_ps)  # lint: ignore[RPR502] plot axis wants raw ps
        """})
        [finding] = by_code(report, "RPR502")
        assert finding.suppressed

    def test_conversion_of_plain_number_is_clean(self, tmp_path):
        report = lint_units(tmp_path, {"good.py": """
            from .units import ps, to_ps

            def roundtrip(raw):
                si = ps(raw)
                return to_ps(si)
        """})
        assert report.findings == ()


class TestUnitNameMismatch:
    def test_name_promising_wrong_unit_fires(self, tmp_path):
        report = lint_units(tmp_path, {"bad.py": """
            from .units import to_ps

            def leakage_nw(power):
                return to_ps(power)
        """})
        [finding] = by_code(report, "RPR503")
        assert "promises power[nW]" in finding.message
        assert "returns time[ps]" in finding.message
        assert finding.location == "pkg/bad.py:4"

    def test_pragma_on_def_line_suppresses(self, tmp_path):
        report = lint_units(tmp_path, {"bad.py": """
            from .units import to_ps

            def leakage_nw(power):  # lint: ignore[RPR503] transitional alias
                return to_ps(power)
        """})
        [finding] = by_code(report, "RPR503")
        assert finding.suppressed

    def test_honest_name_is_clean(self, tmp_path):
        report = lint_units(tmp_path, {"good.py": """
            from .units import to_nw

            def leakage_nw(power):
                return to_nw(power)
        """})
        assert report.findings == ()


class TestPassPlumbing:
    def test_units_module_itself_is_exempt(self, tmp_path):
        # units.py freely mixes raw floats with unit-suffixed names.
        report = lint_units(tmp_path, {})
        assert report.findings == ()

    def test_requires_source_root(self):
        from repro.errors import LintError
        with pytest.raises(LintError):
            run_lint(LintContext(), passes=("units",))
