"""Shard plans: worker-count-free partitions with independent streams."""

import numpy as np
import pytest

from repro.errors import ParallelError
from repro.parallel import DEFAULT_SHARD_SIZE, SampleShardPlan


class TestPartition:
    def test_covers_every_sample_exactly_once(self):
        plan = SampleShardPlan.build(n_samples=10_000, seed=3, shard_size=1024)
        covered = []
        for shard in plan.shards:
            covered.extend(range(shard.start, shard.stop))
        assert covered == list(range(10_000))

    def test_shard_sizes_and_partial_tail(self):
        plan = SampleShardPlan.build(n_samples=5000, seed=0, shard_size=2048)
        assert plan.n_shards == 3
        assert [s.n_samples for s in plan.shards] == [2048, 2048, 904]
        assert [s.index for s in plan.shards] == [0, 1, 2]

    def test_exact_multiple_has_no_empty_shard(self):
        plan = SampleShardPlan.build(n_samples=4096, seed=0, shard_size=2048)
        assert plan.n_shards == 2
        assert all(s.n_samples == 2048 for s in plan.shards)

    def test_single_sample_run(self):
        plan = SampleShardPlan.build(n_samples=1, seed=9)
        assert plan.n_shards == 1
        assert plan.shards[0].n_samples == 1
        assert plan.shard_size == DEFAULT_SHARD_SIZE

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ParallelError, match="n_samples"):
            SampleShardPlan.build(n_samples=0, seed=0)
        with pytest.raises(ParallelError, match="shard_size"):
            SampleShardPlan.build(n_samples=10, seed=0, shard_size=0)


class TestDeterminism:
    def test_plan_is_pure_function_of_inputs(self):
        a = SampleShardPlan.build(n_samples=9000, seed=42, shard_size=512)
        b = SampleShardPlan.build(n_samples=9000, seed=42, shard_size=512)
        assert a.n_shards == b.n_shards
        for sa, sb in zip(a.shards, b.shards):
            assert (sa.index, sa.start, sa.n_samples) == (
                sb.index,
                sb.start,
                sb.n_samples,
            )
            # Identical child streams -> identical draws.
            assert np.array_equal(
                sa.rng().standard_normal(8), sb.rng().standard_normal(8)
            )

    def test_rng_is_fresh_on_every_call(self):
        shard = SampleShardPlan.build(n_samples=10, seed=1).shards[0]
        assert np.array_equal(
            shard.rng().standard_normal(4), shard.rng().standard_normal(4)
        )

    def test_different_seeds_give_different_streams(self):
        a = SampleShardPlan.build(n_samples=10, seed=1).shards[0]
        b = SampleShardPlan.build(n_samples=10, seed=2).shards[0]
        assert not np.array_equal(
            a.rng().standard_normal(8), b.rng().standard_normal(8)
        )

    def test_shards_draw_independent_streams(self):
        plan = SampleShardPlan.build(n_samples=4096, seed=5, shard_size=1024)
        draws = [s.rng().standard_normal(64) for s in plan.shards]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert not np.array_equal(draws[i], draws[j])

    def test_prefix_shards_unchanged_when_n_samples_grows(self):
        # Growing the run only appends shards; existing shard streams are
        # stable because spawn keys depend on the root seed and index only.
        small = SampleShardPlan.build(n_samples=2048, seed=7, shard_size=1024)
        large = SampleShardPlan.build(n_samples=4096, seed=7, shard_size=1024)
        for sa, sb in zip(small.shards, large.shards):
            assert np.array_equal(
                sa.rng().standard_normal(16), sb.rng().standard_normal(16)
            )
