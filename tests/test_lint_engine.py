"""The lint engine, registry, report object, and reporters."""

import json

import pytest

from repro.errors import DiagnosticSeverity, LintError
from repro.lint import (
    JSON_SCHEMA_VERSION,
    REGISTRY,
    Finding,
    LintContext,
    LintEngine,
    LintOptions,
    LintReport,
    PASS_NAMES,
    Rule,
    RuleRegistry,
    render_json,
    render_text,
    run_lint,
)


def _rule(code="RPR199", name="test-rule", severity=DiagnosticSeverity.WARNING,
          pass_name="circuit"):
    return Rule(code=code, name=name, severity=severity,
                summary="a test rule", pass_name=pass_name)


class TestSeverity:
    def test_ordering(self):
        assert DiagnosticSeverity.INFO < DiagnosticSeverity.WARNING
        assert DiagnosticSeverity.WARNING < DiagnosticSeverity.ERROR
        assert DiagnosticSeverity.ERROR >= DiagnosticSeverity.WARNING
        assert max(DiagnosticSeverity) is DiagnosticSeverity.ERROR

    def test_value_is_historical_string(self):
        assert DiagnosticSeverity.WARNING.value == "warning"

    def test_comparison_with_foreign_type_fails(self):
        with pytest.raises(TypeError):
            DiagnosticSeverity.INFO < 1


class TestRule:
    def test_bad_code_rejected(self):
        with pytest.raises(LintError):
            _rule(code="X123")
        with pytest.raises(LintError):
            _rule(code="RPR12")

    def test_bad_pass_rejected(self):
        with pytest.raises(LintError):
            _rule(pass_name="nonsense")

    def test_finding_carries_rule_attributes(self):
        rule = _rule()
        f = rule.finding("boom", location="here")
        assert f.code == "RPR199"
        assert f.name == "test-rule"
        assert f.severity is DiagnosticSeverity.WARNING
        assert f.to_dict()["pass"] == "circuit"


class TestRegistry:
    def test_duplicate_code_rejected(self):
        reg = RuleRegistry()
        reg.add_rule(_rule())
        with pytest.raises(LintError):
            reg.add_rule(_rule(name="other-name"))

    def test_duplicate_name_rejected(self):
        reg = RuleRegistry()
        reg.add_rule(_rule())
        with pytest.raises(LintError):
            reg.add_rule(_rule(code="RPR198"))

    def test_unknown_code_lookup(self):
        with pytest.raises(LintError):
            RuleRegistry().rule("RPR999")

    def test_validate_codes_rejects_unknown(self):
        with pytest.raises(LintError):
            REGISTRY.validate_codes(["RPR101", "RPR999"])

    def test_default_registry_covers_all_passes(self):
        for pass_name in PASS_NAMES:
            assert REGISTRY.rules(pass_name), pass_name
            assert REGISTRY.checks(pass_name), pass_name

    def test_codes_match_pass_numbering(self):
        prefix = {"circuit": "RPR1", "technology": "RPR2",
                  "config": "RPR3", "codebase": "RPR4",
                  "units": "RPR5", "rng": "RPR6",
                  "artifacts": "RPR7", "concurrency": "RPR8",
                  "perf": "RPR9"}
        for rule in REGISTRY:
            assert rule.code.startswith(prefix[rule.pass_name]), rule.code


class TestEngine:
    def test_pass_selection_from_context(self, c17):
        report = run_lint(LintContext(circuit=c17))
        assert report.passes == ("circuit",)

    def test_requesting_unavailable_pass_raises(self, c17):
        with pytest.raises(LintError):
            run_lint(LintContext(circuit=c17), passes=("technology",))

    def test_requesting_unknown_pass_raises(self, c17):
        with pytest.raises(LintError):
            run_lint(LintContext(circuit=c17), passes=("bogus",))

    def test_empty_context_runs_nothing(self):
        report = run_lint(LintContext())
        assert report.passes == ()
        assert report.findings == ()

    def test_ignore_filters_findings(self, c17):
        noisy = run_lint(LintContext(circuit=c17))
        assert any(f.code == "RPR105" for f in noisy.findings)
        quiet = run_lint(
            LintContext(
                circuit=c17, options=LintOptions(ignore=frozenset({"RPR105"}))
            )
        )
        assert not any(f.code == "RPR105" for f in quiet.findings)

    def test_unknown_ignore_code_raises(self, c17):
        ctx = LintContext(
            circuit=c17, options=LintOptions(ignore=frozenset({"RPR999"}))
        )
        with pytest.raises(LintError):
            run_lint(ctx)

    def test_findings_sorted_worst_first(self):
        reg = RuleRegistry()
        info = reg.add_rule(_rule(code="RPR191", name="r-info",
                                  severity=DiagnosticSeverity.INFO))
        err = reg.add_rule(_rule(code="RPR192", name="r-err",
                                 severity=DiagnosticSeverity.ERROR))

        @reg.check("circuit")
        def emit(ctx):
            yield info.finding("low")
            yield err.finding("high")

        report = LintEngine(reg).run(LintContext(circuit=object()))
        assert [f.code for f in report.findings] == ["RPR192", "RPR191"]


def _report(*severities, suppressed=()):
    findings = []
    for i, sev in enumerate(severities):
        rule = _rule(code=f"RPR1{90 + i}", name=f"r{i}", severity=sev)
        findings.append(rule.finding(f"msg {i}", suppressed=i in suppressed))
    return LintReport(findings=tuple(findings), passes=("circuit",))


class TestReport:
    def test_counts(self):
        report = _report(DiagnosticSeverity.ERROR, DiagnosticSeverity.WARNING,
                         DiagnosticSeverity.WARNING, DiagnosticSeverity.INFO)
        assert report.counts() == {
            "errors": 1, "warnings": 2, "info": 1, "suppressed": 0
        }
        assert report.worst() is DiagnosticSeverity.ERROR

    def test_suppressed_findings_do_not_count(self):
        report = _report(DiagnosticSeverity.ERROR, suppressed={0})
        assert report.n_errors == 0
        assert report.n_suppressed == 1
        assert report.exit_code() == 0
        assert report.worst() is None

    def test_exit_code_policy(self):
        assert _report(DiagnosticSeverity.ERROR).exit_code() == 1
        assert _report(DiagnosticSeverity.WARNING).exit_code() == 0
        assert _report(DiagnosticSeverity.WARNING).exit_code(strict=True) == 1
        assert _report(DiagnosticSeverity.INFO).exit_code(strict=True) == 0
        assert _report().exit_code(strict=True) == 0


class TestReporters:
    def test_text_report_mentions_codes_and_summary(self):
        report = _report(DiagnosticSeverity.ERROR, DiagnosticSeverity.INFO)
        text = render_text(report)
        assert "RPR190" in text and "RPR191" in text
        assert "1 error(s)" in text
        assert "(passes: circuit)" in text

    def test_text_report_truncates_repeats(self):
        rule = _rule()
        findings = tuple(rule.finding(f"msg {i}") for i in range(9))
        report = LintReport(findings=findings, passes=("circuit",))
        text = render_text(report)
        assert "... and 4 more" in text
        assert "... and 4 more" not in render_text(report, verbose=True)

    def test_json_round_trip(self):
        report = _report(DiagnosticSeverity.WARNING, suppressed={0})
        payload = json.loads(render_json(report))
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["passes"] == ["circuit"]
        assert payload["summary"]["suppressed"] == 1
        (finding,) = payload["findings"]
        assert finding["code"] == "RPR190"
        assert finding["severity"] == "warning"
        assert finding["suppressed"] is True

    def test_json_of_real_run_round_trips(self, c17):
        report = run_lint(LintContext(circuit=c17))
        payload = json.loads(render_json(report))
        assert {f["code"] for f in payload["findings"]} >= {"RPR105"}
