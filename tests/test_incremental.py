"""Incremental STA: exact equivalence with full STA under point changes."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.tech import VthClass, slow_corner
from repro.timing import TimingView, run_sta
from repro.timing.incremental import IncrementalSTA


@pytest.fixture
def view(c432):
    return TimingView(c432)


def assert_matches_full(inc, view, corner=None):
    full = run_sta(view, corner=corner)
    assert inc.circuit_delay() == pytest.approx(full.circuit_delay, rel=1e-12)
    assert np.allclose(inc.arrivals, full.arrivals, rtol=1e-12)


class TestInitialization:
    def test_matches_full_sta(self, view):
        inc = IncrementalSTA(view)
        assert_matches_full(inc, view)

    def test_matches_full_sta_at_corner(self, view, spec):
        corner = slow_corner(spec)
        inc = IncrementalSTA(view, corner)
        assert_matches_full(inc, view, corner)

    def test_index_range_checked(self, view):
        inc = IncrementalSTA(view)
        with pytest.raises(TimingError):
            inc.notify(view.n_gates, size_changed=False)


class TestPointUpdates:
    def test_single_vth_swap(self, view):
        inc = IncrementalSTA(view)
        view.gates[10].vth = VthClass.HIGH
        inc.notify(10, size_changed=False)
        assert_matches_full(inc, view)

    def test_single_resize(self, view):
        inc = IncrementalSTA(view)
        view.gates[20].size = 4.0
        inc.notify(20, size_changed=True)
        assert_matches_full(inc, view)

    def test_revert_restores(self, view):
        inc = IncrementalSTA(view)
        before = inc.circuit_delay()
        view.gates[5].vth = VthClass.HIGH
        inc.notify(5, size_changed=False)
        view.gates[5].vth = VthClass.LOW
        inc.notify(5, size_changed=False)
        assert inc.circuit_delay() == pytest.approx(before, rel=1e-12)

    def test_randomized_move_sequence(self, view, spec):
        corner = slow_corner(spec)
        inc = IncrementalSTA(view, corner)
        rng = np.random.default_rng(7)
        sizes = view.library.sizes
        for _ in range(120):
            idx = int(rng.integers(view.n_gates))
            gate = view.gates[idx]
            if rng.random() < 0.5:
                gate.vth = gate.vth.other()
                inc.notify(idx, size_changed=False)
            else:
                gate.size = float(sizes[int(rng.integers(len(sizes)))])
                inc.notify(idx, size_changed=True)
        assert_matches_full(inc, view, corner)

    def test_refresh_after_bulk_change(self, view):
        inc = IncrementalSTA(view)
        view.circuit.set_uniform(size=2.0, vth=VthClass.HIGH)
        inc.refresh()
        assert_matches_full(inc, view)


def fanout_cone(view, index):
    """Gate indices transitively driven by ``index`` (inclusive)."""
    cone = {index}
    stack = [index]
    while stack:
        for consumer in view.consumer_pins[stack.pop()]:
            c = int(consumer)
            if c not in cone:
                cone.add(c)
                stack.append(c)
    return cone


class TestDirtyCone:
    """The update must touch exactly the dirty cone, and exactly once."""

    def test_vth_swap_leaves_off_cone_arrivals_untouched(self, view):
        inc = IncrementalSTA(view)
        before = inc.arrivals.copy()
        idx = 30
        view.gates[idx].vth = VthClass.HIGH
        inc.notify(idx, size_changed=False)
        cone = fanout_cone(view, idx)
        outside = np.array(sorted(set(range(view.n_gates)) - cone))
        assert np.array_equal(inc.arrivals[outside], before[outside])
        assert inc.arrivals[idx] != before[idx]

    def test_vth_swap_recomputes_only_the_swapped_delay(self, view):
        inc = IncrementalSTA(view)
        before = inc.delays.copy()
        view.gates[30].vth = VthClass.HIGH
        inc.notify(30, size_changed=False)
        changed = np.flatnonzero(inc.delays != before)
        assert changed.tolist() == [30]

    def test_resize_recomputes_fanin_driver_delays(self, view):
        # A downsize shrinks the gate's input capacitance: every fanin
        # driver sees a lighter load and must get a fresh delay.
        inc = IncrementalSTA(view)
        idx = next(
            i for i in range(view.n_gates) if view.fanin_gates[i].size >= 2
        )
        fanins = {int(f) for f in view.fanin_gates[idx]}
        before = inc.delays.copy()
        view.gates[idx].size = 4.0
        inc.notify(idx, size_changed=True)
        changed = set(np.flatnonzero(inc.delays != before).tolist())
        assert changed & fanins
        assert changed <= fanins | {idx}

    def test_noop_notify_changes_nothing(self, view):
        inc = IncrementalSTA(view)
        arrivals = inc.arrivals.copy()
        delays = inc.delays.copy()
        inc.notify(12, size_changed=False)  # state did not actually change
        assert np.array_equal(inc.arrivals, arrivals)
        assert np.array_equal(inc.delays, delays)

    def test_point_update_bitwise_matches_full_recompute(self, view):
        # Not approx: the incremental pass evaluates the same scalar
        # recurrence in the same (topological) order as refresh(), so a
        # point update must land on bit-identical arrivals.
        inc = IncrementalSTA(view)
        view.gates[40].vth = VthClass.HIGH
        inc.notify(40, size_changed=False)
        full = IncrementalSTA(view)
        assert np.array_equal(inc.delays, full.delays)
        assert np.array_equal(inc.arrivals, full.arrivals)

    def test_randomized_sequence_bitwise_matches_full_recompute(self, view, spec):
        corner = slow_corner(spec)
        inc = IncrementalSTA(view, corner)
        rng = np.random.default_rng(23)
        sizes = view.library.sizes
        for _ in range(60):
            idx = int(rng.integers(view.n_gates))
            gate = view.gates[idx]
            roll = rng.random()
            if roll < 0.4:
                gate.vth = gate.vth.other()
                inc.notify(idx, size_changed=False)
            elif roll < 0.7:
                gate.length_bias = float(rng.choice([0.0, 2e-9, 6e-9]))
                inc.notify(idx, size_changed=False)
            else:
                gate.size = float(sizes[int(rng.integers(len(sizes)))])
                inc.notify(idx, size_changed=True)
        full = IncrementalSTA(view, corner)
        assert np.array_equal(inc.delays, full.delays)
        assert np.array_equal(inc.arrivals, full.arrivals)
        assert inc.circuit_delay() == full.circuit_delay()


class TestEngineIntegration:
    def test_deterministic_flow_unaffected(self, spec):
        # The incremental tracker must not change the deterministic flow's
        # outcome, only its cost: re-validate the final corner delay with
        # full STA.
        from repro.analysis import prepare
        from repro.core import OptimizerConfig, optimize_deterministic

        setup = prepare("c432")
        det = optimize_deterministic(
            setup.circuit, setup.spec, setup.varmodel, config=OptimizerConfig()
        )
        corner = slow_corner(setup.spec, 3.0)
        full = run_sta(setup.circuit, corner=corner)
        assert full.circuit_delay <= det.target_delay * (1 + 1e-9)


class TestLengthBiasUpdates:
    def test_lbias_change_propagates(self, view):
        inc = IncrementalSTA(view)
        view.gates[7].length_bias = 6e-9
        inc.notify(7, size_changed=False)
        assert_matches_full(inc, view)

    def test_mixed_move_kinds_randomized(self, view, spec):
        corner = slow_corner(spec)
        inc = IncrementalSTA(view, corner)
        rng = np.random.default_rng(11)
        for _ in range(90):
            idx = int(rng.integers(view.n_gates))
            gate = view.gates[idx]
            roll = rng.random()
            if roll < 0.4:
                gate.vth = gate.vth.other()
                inc.notify(idx, size_changed=False)
            elif roll < 0.7:
                gate.length_bias = float(rng.choice([0.0, 2e-9, 4e-9, 8e-9]))
                inc.notify(idx, size_changed=False)
            else:
                sizes = view.library.sizes
                gate.size = float(sizes[int(rng.integers(len(sizes)))])
                inc.notify(idx, size_changed=True)
        assert_matches_full(inc, view, corner)
