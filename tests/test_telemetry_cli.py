"""The telemetry CLI surface: --version, --telemetry, the telemetry command."""

import json

import pytest

from repro import __version__
from repro.cli import main
from repro.telemetry import (
    final_snapshot,
    read_events,
    validate_chrome_trace,
)


def run_cli(*argv):
    return main(list(argv))


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_cli("--version")
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_help_epilog_carries_version(self, capsys):
        with pytest.raises(SystemExit):
            run_cli("--help")
        assert f"repro {__version__}" in capsys.readouterr().out


class TestTelemetryFlag:
    def test_mc_writes_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = run_cli(
            "mc", "c17", "--samples", "200", "--telemetry", str(trace)
        )
        captured = capsys.readouterr()
        assert code == 0
        assert f"wrote telemetry trace to {trace}" in captured.err
        records = read_events(trace)
        names = {r.get("name") for r in records if r["type"] == "span"}
        assert "mc.run" in names and "mc.shard" in names
        snap = final_snapshot(records)
        # The mc command runs both a leakage and a timing MC pass.
        assert snap.value("mc_samples_total") == 400.0

    def test_campaign_run_writes_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = run_cli(
            "campaign", "run", "paper-sweep-smoke",
            "--store", str(tmp_path / "store"),
            "--benchmarks", "c17", "--mc-samples", "0",
            "--telemetry", str(trace),
        )
        assert code == 0
        records = read_events(trace)
        names = {r.get("name") for r in records if r["type"] == "span"}
        assert {"campaign.run", "campaign.task", "campaign.exec"} <= names
        snap = final_snapshot(records)
        total = snap.value("campaign_tasks_total", state="succeeded")
        assert total > 0
        assert snap.value("campaign_cache_misses_total") == total

    def test_without_flag_no_trace(self, tmp_path, capsys):
        assert run_cli("mc", "c17", "--samples", "100") == 0
        assert "telemetry" not in capsys.readouterr().err
        assert list(tmp_path.iterdir()) == []


class TestTelemetryCommand:
    @pytest.fixture
    def trace(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        run_cli("mc", "c17", "--samples", "200", "--telemetry", str(path))
        capsys.readouterr()
        return path

    def test_summarize(self, trace, capsys):
        assert run_cli("telemetry", "summarize", str(trace)) == 0
        out = capsys.readouterr().out
        assert "mc.run" in out
        assert "mc_samples_total" in out
        assert "total [s]" in out

    def test_export_chrome(self, trace, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert run_cli(
            "telemetry", "export", str(trace),
            "--format", "chrome", "-o", str(out_path),
        ) == 0
        payload = json.loads(out_path.read_text())
        validate_chrome_trace(payload)
        assert payload["otherData"]["package"] == "repro"

    def test_export_prometheus_stdout(self, trace, capsys):
        assert run_cli(
            "telemetry", "export", str(trace), "--format", "prometheus"
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_mc_samples_total counter" in out
        assert "repro_span_seconds_bucket" in out

    def test_missing_trace_errors(self, tmp_path, capsys):
        assert run_cli(
            "telemetry", "summarize", str(tmp_path / "absent.jsonl")
        ) == 1
        assert "error:" in capsys.readouterr().err


class TestStatusDurations:
    def test_status_shows_per_task_durations(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = (
            "paper-sweep-smoke", "--store", store,
            "--benchmarks", "c17", "--mc-samples", "0",
        )
        run_cli("campaign", "run", *args)
        capsys.readouterr()
        assert run_cli("campaign", "status", *args) == 0
        out = capsys.readouterr().out
        assert "attempts" in out
        assert "retries" in out
        assert "secs" in out
