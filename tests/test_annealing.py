"""Simulated-annealing cross-check optimizer."""

import pytest

from repro.analysis import prepare
from repro.core import (
    AnnealConfig,
    OptimizerConfig,
    optimize_annealing,
    optimize_statistical,
)
from repro.errors import OptimizationError


@pytest.fixture(scope="module")
def anneal_run():
    setup = prepare("c17")
    config = OptimizerConfig()
    result = optimize_annealing(
        setup.circuit, setup.spec, setup.varmodel,
        config=config, anneal=AnnealConfig(steps=800, seed=3),
    )
    return setup, config, result


class TestAnnealConfig:
    def test_validation(self):
        with pytest.raises(OptimizationError):
            AnnealConfig(steps=0)
        with pytest.raises(OptimizationError):
            AnnealConfig(t_start=0.01, t_end=0.1)
        with pytest.raises(OptimizationError):
            AnnealConfig(barrier_weight=-1.0)


class TestAnnealing:
    def test_reduces_objective(self, anneal_run):
        _, _, result = anneal_run
        assert result.after.hc_leakage < result.before.hc_leakage

    def test_final_state_feasible(self, anneal_run):
        setup, config, result = anneal_run
        assert result.after.timing_yield >= config.yield_target - 1e-6

    def test_result_metadata(self, anneal_run):
        _, _, result = anneal_run
        assert result.optimizer == "annealing"
        assert result.moves_applied > 0
        assert result.runtime_seconds > 0

    def test_deterministic_per_seed(self):
        results = []
        for _ in range(2):
            setup = prepare("c17")
            r = optimize_annealing(
                setup.circuit, setup.spec, setup.varmodel,
                anneal=AnnealConfig(steps=300, seed=11),
            )
            results.append(r.after.hc_leakage)
        assert results[0] == pytest.approx(results[1], rel=1e-12)

    def test_comparable_to_greedy(self):
        # On a tiny circuit, annealing should land within a reasonable
        # factor of the greedy flow (either may win slightly).
        setup_g = prepare("c17")
        config = OptimizerConfig()
        greedy = optimize_statistical(
            setup_g.circuit, setup_g.spec, setup_g.varmodel, config=config
        )
        setup_a = prepare("c17")
        annealed = optimize_annealing(
            setup_a.circuit, setup_a.spec, setup_a.varmodel,
            target_delay=greedy.target_delay,
            config=config,
            anneal=AnnealConfig(steps=1500, seed=7),
        )
        ratio = annealed.after.hc_leakage / greedy.after.hc_leakage
        assert 0.5 < ratio < 1.5

    def test_infeasible_target_raises(self):
        setup = prepare("c17")
        with pytest.raises(OptimizationError, match="misses yield"):
            optimize_annealing(
                setup.circuit, setup.spec, setup.varmodel,
                target_delay=1e-12,  # impossible
                anneal=AnnealConfig(steps=10),
            )
