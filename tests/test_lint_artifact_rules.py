"""The artifact-durability pass (RPR701/RPR702) on fixture packages."""

import textwrap

from repro.lint import LintContext, run_lint


def lint_artifacts(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, source in {"__init__.py": "", **files}.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint(LintContext(source_root=root), passes=("artifacts",))


def by_code(report, code):
    return [f for f in report.findings if f.code == code]


class TestRawArtifactWrite:
    def test_write_text_on_result_path(self, tmp_path):
        report = lint_artifacts(tmp_path, {
            "io.py": """
                from pathlib import Path

                def save_results(path, payload):
                    Path(path).write_text(payload)
            """,
        })
        [finding] = by_code(report, "RPR701")
        assert finding.location == "pkg/io.py:5"
        assert "write_text()" in finding.message
        assert "atomicio" in finding.message

    def test_bare_open_write_on_artifact_path(self, tmp_path):
        report = lint_artifacts(tmp_path, {
            "io.py": """
                def dump(artifact_path, data):
                    with open(artifact_path, "w") as handle:
                        handle.write(data)
            """,
        })
        [finding] = by_code(report, "RPR701")
        assert 'open(..., "w")' in finding.message

    def test_path_open_write_in_baseline_function(self, tmp_path):
        report = lint_artifacts(tmp_path, {
            "io.py": """
                from pathlib import Path

                def write_baseline(path):
                    with Path(path).open("w") as handle:
                        handle.write("{}")
            """,
        })
        assert len(by_code(report, "RPR701")) == 1

    def test_campaign_modules_flagged_regardless_of_names(self, tmp_path):
        report = lint_artifacts(tmp_path, {
            "campaign/__init__.py": "",
            "campaign/anything.py": """
                def persist(path, data):
                    with open(path, "w") as handle:
                        handle.write(data)
            """,
        })
        assert len(by_code(report, "RPR701")) == 1


class TestOutOfScope:
    def test_append_mode_exempt(self, tmp_path):
        report = lint_artifacts(tmp_path, {
            "io.py": """
                def append_to_ledger(path, line):
                    with open(path, "a") as handle:
                        handle.write(line)
            """,
        })
        assert by_code(report, "RPR701") == []

    def test_scratch_write_not_flagged(self, tmp_path):
        report = lint_artifacts(tmp_path, {
            "export.py": """
                from pathlib import Path

                def save_circuit(path, netlist):
                    Path(path).write_text(netlist)
            """,
        })
        assert by_code(report, "RPR701") == []

    def test_reads_not_flagged(self, tmp_path):
        report = lint_artifacts(tmp_path, {
            "io.py": """
                def load_results(path):
                    with open(path) as handle:
                        return handle.read()
            """,
        })
        assert by_code(report, "RPR701") == []

    def test_atomicio_module_exempt(self, tmp_path):
        report = lint_artifacts(tmp_path, {
            "atomicio.py": """
                def atomic_write_result(path, data):
                    with open(path, "w") as handle:
                        handle.write(data)
            """,
        })
        assert by_code(report, "RPR701") == []


class TestSuppression:
    def test_inline_pragma_suppresses_with_justification(self, tmp_path):
        report = lint_artifacts(tmp_path, {
            "io.py": """
                def save_report(path, text):
                    with open(path, "w") as handle:  # lint: ignore[RPR701] demo scratch file
                        handle.write(text)
            """,
        })
        [finding] = by_code(report, "RPR701")
        assert finding.suppressed
        assert finding.justification == "demo scratch file"
        assert report.exit_code(strict=True) == 0


class TestWallClockDuration:
    def test_time_time_flagged(self, tmp_path):
        report = lint_artifacts(tmp_path, {
            "timing.py": """
                import time

                def measure(fn):
                    start = time.time()
                    fn()
                    return time.time() - start
            """,
        })
        findings = by_code(report, "RPR702")
        assert [f.location for f in findings] == [
            "pkg/timing.py:5", "pkg/timing.py:7",
        ]
        assert "monotonic" in findings[0].message

    def test_bare_imported_time_flagged(self, tmp_path):
        report = lint_artifacts(tmp_path, {
            "timing.py": """
                from time import time

                def stamp():
                    return time()
            """,
        })
        [finding] = by_code(report, "RPR702")
        assert finding.location == "pkg/timing.py:5"

    def test_monotonic_clocks_not_flagged(self, tmp_path):
        report = lint_artifacts(tmp_path, {
            "timing.py": """
                import time

                def measure(fn):
                    start = time.perf_counter()
                    fn()
                    return time.monotonic(), time.perf_counter() - start
            """,
        })
        assert by_code(report, "RPR702") == []

    def test_unrelated_time_call_not_flagged(self, tmp_path):
        # A method named .time() on some other object is out of scope.
        report = lint_artifacts(tmp_path, {
            "timing.py": """
                def read(clock):
                    return clock.time()
            """,
        })
        assert by_code(report, "RPR702") == []

    def test_inline_pragma_suppresses_with_justification(self, tmp_path):
        report = lint_artifacts(tmp_path, {
            "ledger.py": """
                import time

                def record(event):
                    return {"event": event, "ts": time.time()}  # lint: ignore[RPR702] wall-clock for humans
            """,
        })
        [finding] = by_code(report, "RPR702")
        assert finding.suppressed
        assert finding.justification == "wall-clock for humans"
        assert report.exit_code(strict=True) == 0


class TestSelfLint:
    def test_repro_tree_is_clean(self):
        from pathlib import Path

        import repro

        root = Path(repro.__file__).parent
        report = run_lint(
            LintContext(source_root=root), passes=("artifacts",)
        )
        assert [f for f in report.active() if f.code in ("RPR701", "RPR702")] == []
