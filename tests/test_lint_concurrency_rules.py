"""The concurrency-safety pass (RPR8xx): fixtures plus real-repo anchors."""

import textwrap
from pathlib import Path

import pytest

import repro
from repro.lint import LintContext, run_lint


def lint_concurrency(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, source in {"__init__.py": "", **files}.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint(LintContext(source_root=root), passes=("concurrency",))


def by_code(report, code):
    return [f for f in report.findings if f.code == code]


# -- RPR801: mutable-module-global-write --------------------------------------


class TestGlobalWrite:
    def test_function_scope_subscript_write_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "cache.py": """
                CACHE = {}

                def put(key, value):
                    CACHE[key] = value
            """,
        })
        [finding] = by_code(report, "RPR801")
        assert "pkg.cache.put" in finding.message
        assert "CACHE" in finding.message
        assert finding.location == "pkg/cache.py:5"

    def test_global_statement_rebind_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "state.py": """
                ITEMS = []

                def reset():
                    global ITEMS
                    ITEMS = []
            """,
        })
        [finding] = by_code(report, "RPR801")
        assert "global-statement rebind" in finding.message

    def test_mutator_method_call_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "state.py": """
                SEEN = set()

                def mark(x):
                    SEEN.add(x)
            """,
        })
        [finding] = by_code(report, "RPR801")
        assert ".add() call" in finding.message

    def test_local_shadow_not_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "clean.py": """
                CACHE = {}

                def pure(key):
                    CACHE = {}
                    CACHE[key] = 1
                    return CACHE
            """,
        })
        assert by_code(report, "RPR801") == []

    def test_import_time_fill_not_flagged(self, tmp_path):
        """Same-module import-time initialization is the sanctioned idiom."""
        report = lint_concurrency(tmp_path, {
            "table.py": """
                TABLE = {}
                TABLE["a"] = 1
                for k in ("b", "c"):
                    TABLE[k] = 0
            """,
        })
        assert by_code(report, "RPR801") == []

    def test_immutable_global_rebind_not_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "counter.py": """
                LIMIT = 3

                def bump():
                    global LIMIT
                    LIMIT = LIMIT + 1
            """,
        })
        # LIMIT is not a mutable container/singleton, so not in inventory
        assert by_code(report, "RPR801") == []

    def test_inline_pragma_suppresses(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "cache.py": """
                CACHE = {}

                def put(key, value):
                    CACHE[key] = value  # lint: ignore[RPR801] one-shot memo
            """,
        })
        [finding] = by_code(report, "RPR801")
        assert finding.suppressed
        assert finding.justification == "one-shot memo"


# -- RPR802: singleton-mutation-outside-activate ------------------------------


class TestCrossModuleMutation:
    def test_import_time_registration_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "core.py": """
                HOOKS = []
            """,
            "plugin.py": """
                from .core import HOOKS

                HOOKS.append("plugin")
            """,
        })
        [finding] = by_code(report, "RPR802")
        assert "import-time code" in finding.message
        assert "pkg.core.HOOKS" in finding.message
        assert finding.location == "pkg/plugin.py:4"

    def test_cross_module_function_write_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "core.py": """
                TABLE = {}
            """,
            "edit.py": """
                from .core import TABLE

                def install(name):
                    TABLE[name] = True
            """,
        })
        [finding] = by_code(report, "RPR802")
        assert "pkg.edit.install" in finding.message
        assert "pkg.core.TABLE" in finding.message

    def test_same_module_import_time_not_cross(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "core.py": """
                HOOKS = []
                HOOKS.append("builtin")
            """,
        })
        assert by_code(report, "RPR802") == []

    def test_singleton_method_call_at_import_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "reg.py": """
                class Registry:
                    def add(self, x):
                        pass

                REGISTRY = Registry()
            """,
            "rules.py": """
                from .reg import REGISTRY

                REGISTRY.add("rule-1")
            """,
        })
        [finding] = by_code(report, "RPR802")
        assert ".add() call" in finding.message


# -- RPR803: class-attribute-as-shared-cache ----------------------------------


class TestSharedDefaults:
    def test_mutated_class_attribute_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "model.py": """
                class Model:
                    cache = {}

                    def remember(self, key, value):
                        self.cache[key] = value
            """,
        })
        [finding] = by_code(report, "RPR803")
        assert "pkg.model.Model" in finding.message
        assert "cache" in finding.message

    def test_unmutated_class_attribute_not_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "model.py": """
                class Model:
                    defaults = {"alpha": 1}

                    def get(self, key):
                        return self.defaults[key]
            """,
        })
        assert by_code(report, "RPR803") == []

    def test_mutable_param_default_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "fn.py": """
                def collect(item, into=[]):
                    into.append(item)
                    return into
            """,
        })
        [finding] = by_code(report, "RPR803")
        assert "pkg.fn.collect" in finding.message

    def test_default_aliasing_module_global_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "fn.py": """
                STORE = {}

                def lookup(key, store=STORE):
                    return store.get(key)
            """,
        })
        [finding] = by_code(report, "RPR803")
        assert "pkg.STORE" in finding.message or "STORE" in finding.message

    def test_none_default_not_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "fn.py": """
                def collect(item, into=None):
                    into = [] if into is None else into
                    into.append(item)
                    return into
            """,
        })
        assert by_code(report, "RPR803") == []


# -- RPR804: unverifiable-pool-submission -------------------------------------


class TestUnverifiableSubmission:
    def test_lambda_submission_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "run.py": """
                from concurrent.futures import ProcessPoolExecutor
                def launch(x):
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(lambda: x).result()
            """,
        })
        [finding] = by_code(report, "RPR804")
        assert "lambda" in finding.message
        assert ".submit()" in finding.message

    def test_parameter_submission_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "run.py": """
                from concurrent.futures import ProcessPoolExecutor
                def launch(task, x):
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(task, x).result()
            """,
        })
        [finding] = by_code(report, "RPR804")
        assert "parameter 'task'" in finding.message

    def test_module_function_submission_not_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "run.py": """
                from concurrent.futures import ProcessPoolExecutor
                def work(x):
                    return x + 1

                def launch(x):
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(work, x).result()
            """,
        })
        assert by_code(report, "RPR804") == []

    def test_assignment_chain_resolves(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "run.py": """
                from concurrent.futures import ProcessPoolExecutor
                def work(x):
                    return x + 1

                def launch(x):
                    chosen = work
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(chosen, x).result()
            """,
        })
        assert by_code(report, "RPR804") == []


# -- RPR805: fork-inherited-handle-in-worker ----------------------------------


class TestForkInheritedHandle:
    def test_worker_env_read_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "run.py": """
                from concurrent.futures import ProcessPoolExecutor
                import os

                def work(x):
                    return os.environ.get("MODE", "") + str(x)

                def launch(x):
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(work, x).result()
            """,
        })
        [finding] = by_code(report, "RPR805")
        assert "pkg.run.work" in finding.message
        assert "env state" in finding.message
        assert "os.environ" in finding.message

    def test_transitively_reached_warn_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "deep.py": """
                import warnings

                def noisy():
                    warnings.warn("deep")
            """,
            "run.py": """
                from concurrent.futures import ProcessPoolExecutor
                from .deep import noisy

                def work(x):
                    noisy()
                    return x

                def launch(x):
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(work, x).result()
            """,
        })
        [finding] = by_code(report, "RPR805")
        assert "pkg.deep.noisy" in finding.message
        assert "warn state" in finding.message

    def test_env_touch_outside_worker_not_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "run.py": """
                from concurrent.futures import ProcessPoolExecutor
                import os

                def work(x):
                    return x + 1

                def launch(x):
                    mode = os.environ.get("MODE")
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(work, x).result(), mode
            """,
        })
        # launch touches env but runs in the parent, not the workers
        assert by_code(report, "RPR805") == []


# -- RPR806: post-fork-global-read --------------------------------------------


class TestPostForkGlobalRead:
    def test_worker_reads_post_import_mutated_global(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "run.py": """
                from concurrent.futures import ProcessPoolExecutor
                PRESETS = {}

                def register(name):
                    PRESETS[name] = True

                def work(x):
                    return PRESETS.get(x)

                def launch(x):
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(work, x).result()
            """,
        })
        findings = by_code(report, "RPR806")
        assert any(
            "pkg.run.work" in f.message
            and "pkg.run.PRESETS" in f.message
            and "pkg.run.register" in f.message
            for f in findings
        )

    def test_read_of_import_time_only_global_not_flagged(self, tmp_path):
        report = lint_concurrency(tmp_path, {
            "run.py": """
                from concurrent.futures import ProcessPoolExecutor
                PRESETS = {}
                PRESETS["a"] = 1

                def work(x):
                    return PRESETS.get(x)

                def launch(x):
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(work, x).result()
            """,
        })
        # only import-time writers: the fork-inherited copy is final
        assert by_code(report, "RPR806") == []


# -- the real repository ------------------------------------------------------


@pytest.fixture(scope="module")
def repo_report():
    """One concurrency-pass run over the installed repro package."""
    root = Path(repro.__file__).parent
    return run_lint(LintContext(source_root=root), passes=("concurrency",))


class TestRealRepo:
    """Anchor every rule to at least one deliberate finding in the tree."""

    def test_rpr801_telemetry_singleton_suppressed(self, repo_report):
        found = [f for f in by_code(repo_report, "RPR801")
                 if "telemetry/runtime.py" in (f.location or "")]
        assert found and all(f.suppressed for f in found)

    def test_rpr801_preset_fill_suppressed(self, repo_report):
        found = [f for f in by_code(repo_report, "RPR801")
                 if "tech/technology.py" in (f.location or "")]
        assert found and all(f.suppressed for f in found)

    def test_rpr802_rule_registry_registrations(self, repo_report):
        found = by_code(repo_report, "RPR802")
        assert any("repro.lint.core.REGISTRY" in f.message for f in found)
        # the concurrency pass flags its own registration module
        assert any("concurrency_rules.py" in (f.location or "") for f in found)

    def test_rpr803_engine_registry_default(self, repo_report):
        found = by_code(repo_report, "RPR803")
        assert any("LintEngine.__init__" in f.message for f in found)

    def test_rpr804_pool_runners_suppressed(self, repo_report):
        found = by_code(repo_report, "RPR804")
        locations = {f.location.rsplit(":", 1)[0] for f in found}
        assert "repro/parallel/runner.py" in locations
        assert "repro/lint/sharded.py" in locations
        assert all(f.suppressed for f in found)

    def test_rpr805_worker_handles(self, repo_report):
        found = by_code(repo_report, "RPR805")
        assert any("os.environ" in f.message for f in found)
        assert any("warnings.warn" in f.message for f in found)

    def test_rpr806_preset_and_telemetry_reads(self, repo_report):
        found = by_code(repo_report, "RPR806")
        assert any("repro.tech.technology._PRESETS" in f.message
                   for f in found)
        assert any("repro.telemetry.runtime._ACTIVE" in f.message
                   for f in found)


class TestSubmitSiteCoverage:
    """The fork-boundary pass must see every pool-submission site.

    A textual scan over the source tree is the ground truth: any module
    that constructs a process pool must show up in the analysis's site
    list.  Adding a new executor without the analysis resolving its
    submissions fails here — that is the point.
    """

    def test_every_pool_module_is_analyzed(self):
        import ast

        root = Path(repro.__file__).parent
        ground_truth = set()
        for path in sorted(root.rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (func.id if isinstance(func, ast.Name)
                        else func.attr if isinstance(func, ast.Attribute)
                        else None)
                if name in ("ProcessPoolExecutor", "Pool"):
                    rel = path.relative_to(root.parent)
                    ground_truth.add(".".join(rel.with_suffix("").parts))
        program = LintContext(source_root=root).whole_program()
        analyzed = {site.module_name for site in
                    program.fork_boundaries().sites}
        assert ground_truth, "expected at least one pool user in the tree"
        assert ground_truth == analyzed

    def test_known_sites_present(self):
        root = Path(repro.__file__).parent
        program = LintContext(source_root=root).whole_program()
        sites = program.fork_boundaries().sites
        modules = {site.module_name for site in sites}
        assert modules == {
            "repro.campaign.scheduler",
            "repro.lint.sharded",
            "repro.parallel.runner",
            "repro.service.app",
        }

    def test_runner_worker_closure_reaches_task_internals(self):
        """run_sharded's closure provably includes the MC worker path."""
        root = Path(repro.__file__).parent
        program = LintContext(source_root=root).whole_program()
        fork = program.fork_boundaries()
        workers = fork.worker_nodes()
        assert "repro.parallel.runner.run_sharded" in workers
