"""Analytic statistical leakage vs Monte Carlo and its structure."""

import numpy as np
import pytest

from repro.circuit import build_variation_model
from repro.errors import PowerError
from repro.power import (
    analyze_leakage,
    analyze_statistical_leakage,
    gate_log_leakage_terms,
    run_monte_carlo_leakage,
)
from repro.tech import VthClass


class TestStructure:
    def test_terms_shapes(self, c432, varmodel_c432):
        log_means, loadings, indep = gate_log_leakage_terms(c432, varmodel_c432)
        n = c432.n_gates
        assert log_means.shape == (n,)
        assert loadings.shape == (n, varmodel_c432.n_globals)
        assert indep.shape == (n,)
        assert np.all(indep > 0)

    def test_log_means_match_nominal(self, c432, varmodel_c432):
        log_means, _, _ = gate_log_leakage_terms(c432, varmodel_c432)
        from repro.power import gate_leakage_currents

        assert np.allclose(np.exp(log_means), gate_leakage_currents(c432))

    def test_model_mismatch_rejected(self, c432, rca8, spec):
        vm = build_variation_model(rca8, spec)
        with pytest.raises(PowerError, match="variation model covers"):
            analyze_statistical_leakage(c432, vm)


class TestDistribution:
    def test_mean_exceeds_nominal(self, c432, varmodel_c432):
        stat = analyze_statistical_leakage(c432, varmodel_c432)
        nominal = analyze_leakage(c432).total_power
        assert stat.mean_power > nominal
        assert stat.nominal_power == pytest.approx(nominal, rel=1e-9)
        assert stat.mean_inflation > 1.05

    def test_percentiles_ordered(self, c432, varmodel_c432):
        stat = analyze_statistical_leakage(c432, varmodel_c432)
        p50 = stat.percentile_power(0.5)
        p95 = stat.percentile_power(0.95)
        p99 = stat.percentile_power(0.99)
        assert p50 < stat.mean_power < p95 < p99

    def test_high_confidence_point(self, c432, varmodel_c432):
        stat = analyze_statistical_leakage(c432, varmodel_c432)
        hc = stat.high_confidence_power(1.645)
        assert hc == pytest.approx(
            stat.mean_power + 1.645 * stat.std_current * stat.vdd
        )

    def test_matches_monte_carlo(self, c432, varmodel_c432):
        stat = analyze_statistical_leakage(c432, varmodel_c432)
        mc = run_monte_carlo_leakage(c432, varmodel_c432, n_samples=6000, seed=21)
        assert stat.mean_power == pytest.approx(mc.mean_power, rel=0.03)
        assert stat.std_current * stat.vdd == pytest.approx(mc.std_power, rel=0.10)
        assert stat.percentile_power(0.95) == pytest.approx(
            mc.percentile_power(0.95), rel=0.05
        )

    def test_correlation_fattens_the_tail(self, c432, spec):
        # Same total sigma; correlated variation cannot average out across
        # gates, so the full-chip distribution is much wider.
        vm_corr = build_variation_model(c432, spec)
        vm_flat = build_variation_model(c432, spec.without_correlation())
        corr = analyze_statistical_leakage(c432, vm_corr)
        flat = analyze_statistical_leakage(c432, vm_flat)
        assert corr.std_current > 2 * flat.std_current

    def test_high_vth_shrinks_everything(self, c432, varmodel_c432):
        before = analyze_statistical_leakage(c432, varmodel_c432)
        c432.set_uniform(vth=VthClass.HIGH)
        after = analyze_statistical_leakage(c432, varmodel_c432)
        assert after.mean_power < before.mean_power / 10
        assert after.percentile_power(0.95) < before.percentile_power(0.95) / 10

    def test_rdf_derating_narrows_spread(self, c432, varmodel_c432):
        c432.set_uniform(size=4.0)
        derated = analyze_statistical_leakage(
            c432, varmodel_c432, derate_rdf_with_size=True
        )
        flat = analyze_statistical_leakage(
            c432, varmodel_c432, derate_rdf_with_size=False
        )
        assert derated.std_current < flat.std_current
        # RDF averaging also trims the lognormal mean inflation.
        assert derated.mean_power < flat.mean_power


class TestMonteCarloLeakage:
    def test_deterministic_per_seed(self, c432, varmodel_c432):
        a = run_monte_carlo_leakage(c432, varmodel_c432, n_samples=100, seed=5)
        b = run_monte_carlo_leakage(c432, varmodel_c432, n_samples=100, seed=5)
        assert np.allclose(a.currents, b.currents)

    def test_positive_and_skewed(self, c432, varmodel_c432):
        mc = run_monte_carlo_leakage(c432, varmodel_c432, n_samples=4000, seed=6)
        assert np.all(mc.currents > 0)
        # Lognormal-ish: mean above median.
        assert mc.currents.mean() > np.median(mc.currents)

    def test_percentile_bounds(self, c432, varmodel_c432):
        mc = run_monte_carlo_leakage(c432, varmodel_c432, n_samples=100, seed=7)
        with pytest.raises(PowerError):
            mc.percentile_power(0.0)

    def test_shared_samples_with_timing(self, c432, varmodel_c432):
        from repro.timing import run_monte_carlo_sta

        timing = run_monte_carlo_sta(c432, varmodel_c432, n_samples=1500, seed=8)
        leak = run_monte_carlo_leakage(c432, varmodel_c432, samples=timing.samples)
        rho = np.corrcoef(timing.circuit_delays, leak.currents)[0, 1]
        # Fast dies leak most: strong negative correlation.
        assert rho < -0.5
