"""TILOS-flavoured min-delay sizing."""

import pytest

from repro.errors import OptimizationError
from repro.core import minimize_delay, upsize_effect
from repro.tech import VthClass, slow_corner
from repro.timing import TimingView, run_sta


class TestUpsizeEffect:
    def test_heavily_loaded_gate_benefits(self, lib, c432):
        # A gate driving many consumers speeds up when upsized.
        view = TimingView(c432)
        fanouts = [(len(view.consumer_pins[i]), i) for i in range(view.n_gates)]
        _, idx = max(fanouts)
        effect = upsize_effect(view, idx, 2.0)
        assert effect < 0

    def test_effect_restores_state(self, c432):
        view = TimingView(c432)
        before = view.gates[0].size
        upsize_effect(view, 0, 4.0)
        assert view.gates[0].size == before

    def test_estimate_tracks_actual_delay_change(self, c432):
        view = TimingView(c432)
        sta = run_sta(view)
        # Pick a gate on the critical path and compare the local estimate
        # against the measured circuit-delay change.
        idx = c432.gate_index(sta.critical_path[len(sta.critical_path) // 2])
        est = upsize_effect(view, idx, 2.0)
        view.gates[idx].size = 2.0
        actual = run_sta(view).circuit_delay - sta.circuit_delay
        view.gates[idx].size = 1.0
        # The local estimate bounds the real change loosely; both should
        # agree in sign or be tiny.
        assert actual <= max(0.0, est) + 1e-13


class TestMinimizeDelay:
    def test_improves_or_holds_delay(self, c432):
        view = TimingView(c432)
        before = run_sta(view).circuit_delay
        dmin = minimize_delay(view)
        assert dmin <= before
        # Reported delay matches the circuit's actual state.
        assert run_sta(view).circuit_delay == pytest.approx(dmin, rel=1e-9)

    def test_meaningful_speedup_on_real_circuit(self, c432):
        view = TimingView(c432)
        before = run_sta(view).circuit_delay
        dmin = minimize_delay(view)
        assert dmin < 0.97 * before

    def test_sizes_stay_on_grid(self, lib, c432):
        view = TimingView(c432)
        minimize_delay(view)
        for gate in c432.gates():
            lib.size_index(gate.size)  # raises if off-grid

    def test_vth_untouched(self, c432):
        view = TimingView(c432)
        minimize_delay(view)
        assert all(g.vth is VthClass.LOW for g in c432.gates())

    def test_corner_sizing(self, c432, spec):
        view = TimingView(c432)
        corner = slow_corner(spec)
        dmin = minimize_delay(view, corner=corner)
        assert run_sta(view, corner=corner).circuit_delay == pytest.approx(
            dmin, rel=1e-9
        )
        # Corner delay exceeds the nominal delay of the same sizing.
        assert dmin > run_sta(view).circuit_delay

    def test_max_passes_validated(self, c432):
        view = TimingView(c432)
        with pytest.raises(OptimizationError):
            minimize_delay(view, max_passes=0)
