"""Pluggable statistical-timing engines: registry, backends, distributions."""

import math

import numpy as np
import pytest

from repro.engines import (
    DEFAULT_BINS,
    ENDPOINT_QUANTILES,
    ENGINE_NAMES,
    ClarkEngine,
    EmpiricalDelay,
    GaussianDelay,
    HistogramDelay,
    HistogramEngine,
    MCEngine,
    get_engine,
    validate_bins,
)
from repro.engines.base import EndpointSummary, summarize_endpoint
from repro.errors import EngineError
from repro.timing import Canonical, run_monte_carlo_sta, run_ssta
from repro.variation import VariationSpec
from repro.variation.model import VariationModel


# -- registry -----------------------------------------------------------------


class TestRegistry:
    def test_names_cover_all_backends(self):
        assert ENGINE_NAMES == ("clark", "histogram", "mc")

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_get_engine_resolves(self, name):
        engine = get_engine(name)
        assert engine.name == name

    def test_unknown_engine_lists_registry(self):
        with pytest.raises(EngineError, match="clark, histogram, mc"):
            get_engine("spice")

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_unknown_param_rejected(self, name, c17, spec):
        from repro.circuit.placement import build_variation_model

        varmodel = build_variation_model(c17, spec)
        with pytest.raises(EngineError, match="does not accept"):
            get_engine(name).analyze(c17, varmodel, frobnicate=1)


# -- distribution primitives --------------------------------------------------


class TestGaussianDelay:
    def test_delegates_to_canonical(self):
        c = Canonical(1.0, np.array([0.3]), 0.4)
        dist = GaussianDelay(c)
        assert dist.mean == c.mean
        assert dist.sigma == c.sigma
        assert dist.cdf(1.2) == c.cdf(1.2)
        assert dist.quantile(0.9) == c.percentile(0.9)


class TestHistogramDelay:
    def test_moments_match_lattice(self):
        values = np.array([0.0, 1.0, 2.0])
        pmf = np.array([0.25, 0.5, 0.25])
        dist = HistogramDelay(values=values, pmf=pmf)
        assert dist.mean == pytest.approx(1.0)
        assert dist.sigma == pytest.approx(math.sqrt(0.5))

    def test_cdf_piecewise_linear_and_monotone(self):
        dist = HistogramDelay(
            values=np.array([0.0, 1.0]), pmf=np.array([0.5, 0.5])
        )
        # Bin edges at -0.5/0.5/1.5; CDF knots 0, 0.5, 1.
        assert dist.cdf(-1.0) == 0.0
        assert dist.cdf(0.0) == pytest.approx(0.25)
        assert dist.cdf(0.5) == pytest.approx(0.5)
        assert dist.cdf(2.0) == 1.0
        ts = np.linspace(-1.0, 2.0, 31)
        cs = [dist.cdf(t) for t in ts]
        assert all(b >= a for a, b in zip(cs, cs[1:]))

    def test_quantile_inverts_cdf(self):
        dist = HistogramDelay(
            values=np.array([0.0, 1.0, 2.0]),
            pmf=np.array([0.2, 0.5, 0.3]),
        )
        for q in (0.1, 0.5, 0.9):
            assert dist.cdf(dist.quantile(q)) == pytest.approx(q, abs=1e-12)

    def test_quantile_rejects_bounds(self):
        dist = HistogramDelay(
            values=np.array([0.0, 1.0]), pmf=np.array([0.5, 0.5])
        )
        for q in (0.0, 1.0, -0.5):
            with pytest.raises(EngineError):
                dist.quantile(q)

    def test_single_bin_is_exact_step(self):
        # The satellite regression: a degenerate (zero-variance) histogram
        # must answer 0 or 1, never NaN.
        dist = HistogramDelay(values=np.array([2.0]), pmf=np.array([1.0]))
        assert dist.sigma == 0.0
        assert dist.cdf(1.9) == 0.0
        assert dist.cdf(2.0) == 1.0
        assert dist.cdf(2.1) == 1.0
        assert not math.isnan(dist.cdf(2.0))
        assert dist.quantile(0.5) == 2.0

    def test_empty_or_mismatched_rejected(self):
        with pytest.raises(EngineError):
            HistogramDelay(values=np.array([]), pmf=np.array([]))
        with pytest.raises(EngineError):
            HistogramDelay(
                values=np.array([0.0, 1.0]), pmf=np.array([1.0])
            )


class TestEmpiricalDelay:
    def test_from_samples_sorts(self):
        dist = EmpiricalDelay.from_samples(np.array([3.0, 1.0, 2.0]))
        assert list(dist.sorted_samples) == [1.0, 2.0, 3.0]
        assert dist.n_samples == 3

    def test_empty_rejected(self):
        with pytest.raises(EngineError):
            EmpiricalDelay.from_samples(np.array([]))

    def test_cdf_counts_fraction(self):
        dist = EmpiricalDelay.from_samples(np.arange(10, dtype=float))
        assert dist.cdf(4.0) == pytest.approx(0.5)
        assert dist.cdf(-1.0) == 0.0
        assert dist.cdf(100.0) == 1.0

    def test_cdf_ci_brackets_point(self):
        rng = np.random.default_rng(4)
        dist = EmpiricalDelay.from_samples(rng.normal(0.0, 1.0, 2000))
        lo, hi = dist.cdf_ci(0.0)
        assert 0.0 <= lo <= dist.cdf(0.0) <= hi <= 1.0

    def test_quantile_ci_brackets_point(self):
        rng = np.random.default_rng(5)
        dist = EmpiricalDelay.from_samples(rng.normal(0.0, 1.0, 2000))
        lo, hi = dist.quantile_ci(0.95)
        assert lo <= dist.quantile(0.95) <= hi

    def test_quantile_bounds_rejected(self):
        dist = EmpiricalDelay.from_samples(np.array([1.0, 2.0]))
        with pytest.raises(EngineError):
            dist.quantile(1.0)
        with pytest.raises(EngineError):
            dist.quantile_ci(0.0)

    def test_single_sample_sigma_zero(self):
        dist = EmpiricalDelay.from_samples(np.array([1.0]))
        assert dist.sigma == 0.0
        assert dist.cdf(1.0) == 1.0


class TestEndpointSummary:
    def test_summarize_reports_standard_quantiles(self):
        c = Canonical(1.0, np.array([0.1]), 0.1)
        summary = summarize_endpoint(7, GaussianDelay(c))
        assert summary.gate_index == 7
        assert tuple(q for q, _ in summary.quantiles) == ENDPOINT_QUANTILES
        assert summary.quantile(0.95) == c.percentile(0.95)

    def test_missing_quantile_rejected(self):
        summary = EndpointSummary(
            gate_index=0, mean=1.0, sigma=0.1, quantiles=((0.5, 1.0),)
        )
        with pytest.raises(EngineError, match="not reported"):
            summary.quantile(0.75)


# -- clark adapter: bitwise identity ------------------------------------------


class TestClarkEngine:
    def test_bitwise_identical_to_run_ssta(self, c432, varmodel_c432):
        ssta = run_ssta(c432, varmodel_c432)
        result = ClarkEngine().analyze(c432, varmodel_c432)
        assert result.max_delay.mean == ssta.circuit_delay.mean
        assert result.max_delay.sigma == ssta.circuit_delay.sigma
        target = 1.05 * ssta.circuit_delay.mean
        assert result.yield_at(target) == ssta.timing_yield(target)

    def test_endpoints_match_arrivals(self, c432, varmodel_c432):
        from repro.timing import TimingView

        view = TimingView(c432)
        ssta = run_ssta(view, varmodel_c432)
        result = ClarkEngine().analyze(view, varmodel_c432)
        po = [int(i) for i in view.primary_output_indices()]
        assert [e.gate_index for e in result.endpoints] == po
        for endpoint in result.endpoints:
            arrival = ssta.arrivals[endpoint.gate_index]
            assert endpoint.mean == arrival.mean
            assert endpoint.sigma == arrival.sigma

    def test_result_metadata(self, c17, spec):
        from repro.circuit.placement import build_variation_model

        varmodel = build_variation_model(c17, spec)
        result = ClarkEngine().analyze(c17, varmodel)
        assert result.engine == "clark"
        assert result.n_gates == c17.n_gates


# -- histogram engine ---------------------------------------------------------


class TestHistogramEngine:
    def test_bins_validation(self):
        assert validate_bins(64) == 64
        for bad in (1, 0, -3, 65537, 2.5, "64", True):
            with pytest.raises(EngineError):
                validate_bins(bad)

    def test_moments_close_to_clark(self, c432, varmodel_c432):
        clark = ClarkEngine().analyze(c432, varmodel_c432)
        hist = HistogramEngine().analyze(c432, varmodel_c432, bins=256)
        assert hist.max_delay.mean == pytest.approx(
            clark.max_delay.mean, rel=0.01
        )
        assert hist.max_delay.sigma == pytest.approx(
            clark.max_delay.sigma, rel=0.05
        )

    def test_bitwise_deterministic_across_reruns_and_jobs(
        self, c432, varmodel_c432
    ):
        a = HistogramEngine().analyze(c432, varmodel_c432, bins=128)
        b = HistogramEngine().analyze(c432, varmodel_c432, bins=128)
        c = HistogramEngine().analyze(
            c432, varmodel_c432, bins=128, n_jobs=4
        )
        for other in (b, c):
            assert np.array_equal(a.max_delay.values, other.max_delay.values)
            assert np.array_equal(a.max_delay.pmf, other.max_delay.pmf)

    def test_default_bin_count_recorded(self, c17, spec):
        from repro.circuit.placement import build_variation_model

        varmodel = build_variation_model(c17, spec)
        result = HistogramEngine().analyze(c17, varmodel)
        assert result.params["bins"] == DEFAULT_BINS

    def test_zero_variance_circuit_yields_step(self, c17):
        # Frozen process: the delay is deterministic and the histogram
        # must degrade to an exact step (satellite regression).
        frozen = VariationModel(
            VariationSpec(sigma_l_total=0.0, sigma_vth_total=0.0),
            n_gates=c17.n_gates,
        )
        from repro.timing import run_sta

        nominal = run_sta(c17).circuit_delay
        result = HistogramEngine().analyze(c17, frozen, bins=64)
        lo = result.yield_at(0.5 * nominal)
        hi = result.yield_at(2.0 * nominal)
        assert (lo, hi) == (0.0, 1.0)
        assert not math.isnan(lo) and not math.isnan(hi)

    def test_endpoint_count_matches_outputs(self, c432, varmodel_c432):
        from repro.timing import TimingView

        view = TimingView(c432)
        result = HistogramEngine().analyze(view, varmodel_c432, bins=64)
        assert len(result.endpoints) == view.primary_output_indices().size


# -- mc engine ----------------------------------------------------------------


class TestMCEngine:
    def test_matches_run_monte_carlo_sta_bitwise(self, c432, varmodel_c432):
        mc = run_monte_carlo_sta(
            c432, varmodel_c432, n_samples=500, seed=3, keep_samples=False
        )
        result = MCEngine().analyze(
            c432, varmodel_c432, n_samples=500, seed=3
        )
        assert np.array_equal(
            np.sort(mc.circuit_delays), result.max_delay.sorted_samples
        )
        target = 1.05 * mc.mean
        assert result.yield_at(target) == mc.timing_yield(target)

    def test_jobs_invariant(self, c432, varmodel_c432):
        a = MCEngine().analyze(c432, varmodel_c432, n_samples=400, seed=1)
        b = MCEngine().analyze(
            c432, varmodel_c432, n_samples=400, seed=1, n_jobs=2
        )
        assert np.array_equal(
            a.max_delay.sorted_samples, b.max_delay.sorted_samples
        )

    def test_endpoint_max_is_circuit_delay(self, c432, varmodel_c432):
        result = MCEngine().analyze(c432, varmodel_c432, n_samples=200, seed=0)
        matrix = result.raw
        assert np.array_equal(
            np.sort(matrix.max(axis=0)), result.max_delay.sorted_samples
        )
        assert len(result.endpoints) == matrix.shape[0]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_samples": 0},
            {"n_samples": 2.5},
            {"n_samples": True},
            {"seed": -1},
            {"n_jobs": -2},
        ],
    )
    def test_param_validation(self, c17, spec, kwargs):
        from repro.circuit.placement import build_variation_model

        varmodel = build_variation_model(c17, spec)
        with pytest.raises(EngineError):
            MCEngine().analyze(c17, varmodel, **kwargs)

    def test_mismatched_model_rejected(self, c17):
        wrong = VariationModel(
            VariationSpec(sigma_l_total=0.0, sigma_vth_total=0.0), n_gates=1
        )
        with pytest.raises(EngineError, match="variation model covers"):
            MCEngine().analyze(c17, wrong, n_samples=16)


# -- cross-backend agreement and result surface -------------------------------


class TestResultSurface:
    def test_yield_rejects_nonpositive_target(self, c17, spec):
        from repro.circuit.placement import build_variation_model

        varmodel = build_variation_model(c17, spec)
        result = ClarkEngine().analyze(c17, varmodel)
        with pytest.raises(EngineError):
            result.yield_at(0.0)

    def test_delay_at_yield_bounds(self, c17, spec):
        from repro.circuit.placement import build_variation_model

        varmodel = build_variation_model(c17, spec)
        result = ClarkEngine().analyze(c17, varmodel)
        with pytest.raises(EngineError):
            result.delay_at_yield(1.0)
        t = result.delay_at_yield(0.9)
        assert result.yield_at(t) == pytest.approx(0.9, abs=1e-9)

    def test_optimizer_config_validates_engine(self):
        from repro.core import OptimizerConfig
        from repro.errors import OptimizationError

        assert OptimizerConfig().timing_engine == "clark"
        assert OptimizerConfig(timing_engine="histogram").timing_engine == (
            "histogram"
        )
        with pytest.raises(OptimizationError, match="timing_engine"):
            OptimizerConfig(timing_engine="spice")

    def test_statistical_strategy_engine_path(self, c432, varmodel_c432):
        from repro.core import OptimizerConfig
        from repro.core.statistical import StatisticalStrategy
        from repro.timing import TimingView, run_ssta

        view = TimingView(c432)
        target = 1.05 * run_ssta(view, varmodel_c432).circuit_delay.mean

        def strategy(engine):
            return StatisticalStrategy(
                view, varmodel_c432, target,
                OptimizerConfig(timing_engine=engine), probs={},
            )

        y_clark = strategy("clark").evaluate_yield()
        # Clark default is the bitwise-preserved historical path.
        assert y_clark == run_ssta(view, varmodel_c432).timing_yield(target)
        y_hist = strategy("histogram").evaluate_yield()
        assert y_hist == pytest.approx(y_clark, abs=0.03)

    def test_engine_spans_are_hot_path_roots(self):
        # The perf lint's hot-path attribution must see the new kernels:
        # every engine span is a string-literal site the AST inventory
        # discovers, and the convolution kernels are reachable from it.
        from pathlib import Path

        import repro
        from repro.lint.analysis import (
            CallGraph,
            HotPathAnalysis,
            ModuleIndex,
            PackageSymbols,
        )

        root = Path(repro.__file__).parent
        symbols = PackageSymbols(ModuleIndex.load(root))
        hot = HotPathAnalysis(symbols, CallGraph.build(symbols))
        names = hot.span_names()
        for span in (
            "engine.histogram.run",
            "engine.histogram.convolve",
            "engine.histogram.finish",
            "engine.mc.run",
            "engine.pipeline.run",
        ):
            assert span in names, span
        via = hot.hot_via()
        for kernel in (
            "repro.engines.histogram._lattice_sum",
            "repro.engines.histogram._lattice_max",
            "repro.engines.histogram.propagate_lattice",
        ):
            assert "engine.histogram.convolve" in via.get(kernel, ()), kernel

    def test_engines_agree_on_yield(self, c432, varmodel_c432):
        # Every backend answers the same question; at a moderate margin
        # they must agree to MC noise + discretization error.
        clark = ClarkEngine().analyze(c432, varmodel_c432)
        target = 1.05 * clark.max_delay.mean
        hist = HistogramEngine().analyze(c432, varmodel_c432, bins=256)
        mc = MCEngine().analyze(c432, varmodel_c432, n_samples=4000, seed=0)
        y_clark = clark.yield_at(target)
        assert hist.yield_at(target) == pytest.approx(y_clark, abs=0.03)
        assert mc.yield_at(target) == pytest.approx(y_clark, abs=0.03)
