"""Job-request wire format: validation, lowering, and round-trips."""

import pytest

from repro.campaign import resolve_spec, spec_from_dict
from repro.errors import ServiceError
from repro.service import (
    JobRequest,
    parse_job_request,
    spec_to_wire,
    validate_tenant,
)


class TestTenantNames:
    @pytest.mark.parametrize("name", ["default", "acme", "a", "t-1.2_x", "A" * 64])
    def test_valid(self, name):
        assert validate_tenant(name) == name

    @pytest.mark.parametrize("name", [
        "", "-lead", ".lead", "a/b", "a b", "a" * 65, 7, None, "é",
    ])
    def test_invalid(self, name):
        with pytest.raises(ServiceError):
            validate_tenant(name)


class TestSpecRoundtrip:
    def test_wire_reconstructs_equal_spec(self):
        spec = resolve_spec("paper-sweep-smoke")
        assert spec_from_dict(spec_to_wire(spec)) == spec

    def test_wire_survives_json(self):
        import json

        spec = resolve_spec("paper-sweep-smoke")
        wire = json.loads(json.dumps(spec_to_wire(spec)))
        assert spec_from_dict(wire) == spec
        assert spec_from_dict(wire).fingerprint() == spec.fingerprint()


class TestParseCampaign:
    def test_campaign_request(self):
        spec = resolve_spec("paper-sweep-smoke")
        request = parse_job_request({
            "kind": "campaign", "tenant": "acme", "seed": 3,
            "spec": spec_to_wire(spec),
        })
        assert request.kind == "campaign"
        assert request.tenant == "acme"
        assert request.seed == 3
        assert request.spec == spec

    def test_to_wire_round_trips(self):
        spec = resolve_spec("paper-sweep-smoke")
        request = JobRequest(kind="campaign", tenant="t", spec=spec, seed=9)
        again = parse_job_request(request.to_wire())
        assert again == request

    def test_missing_spec_rejected(self):
        with pytest.raises(ServiceError, match="spec"):
            parse_job_request({"kind": "campaign"})

    def test_non_object_rejected(self):
        with pytest.raises(ServiceError, match="JSON object"):
            parse_job_request([1, 2])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown job kind"):
            parse_job_request({"kind": "demolish"})

    @pytest.mark.parametrize("seed", [-1, 1.5, True, "7"])
    def test_bad_seed_rejected(self, seed):
        with pytest.raises(ServiceError, match="seed"):
            parse_job_request({"kind": "campaign", "seed": seed, "spec": {}})


class TestParsePointKinds:
    def test_optimize_lowers_to_single_benchmark_campaign(self):
        request = parse_job_request({
            "kind": "optimize", "benchmark": "c17",
            "flow": "deterministic", "margin": 1.2,
        })
        spec = request.spec
        assert spec.benchmarks == ("c17",)
        assert spec.flows == ("deterministic",)
        assert spec.margins == (1.2,)
        assert spec.mc_samples == 0  # no validation stage

    def test_optimize_wire_round_trips_via_spec(self):
        request = parse_job_request({
            "kind": "optimize", "benchmark": "c17", "flow": "deterministic",
        })
        again = parse_job_request(request.to_wire())
        assert again.spec == request.spec

    def test_mc_carries_sampling_fields(self):
        request = parse_job_request({
            "kind": "mc", "benchmark": "c17", "samples": 128, "seed": 11,
            "estimator": "sobol",
        })
        assert request.spec.mc_samples == 128
        assert request.spec.mc_seed == 11
        assert request.spec.mc_estimator == "sobol"

    def test_flow_both_expands(self):
        request = parse_job_request({"kind": "optimize", "benchmark": "c17"})
        assert request.spec.flows == ("deterministic", "statistical")

    def test_unknown_flow_rejected(self):
        with pytest.raises(ServiceError, match="flow"):
            parse_job_request({
                "kind": "optimize", "benchmark": "c17", "flow": "psychic",
            })

    def test_missing_benchmark_rejected(self):
        with pytest.raises(ServiceError, match="benchmark"):
            parse_job_request({"kind": "optimize"})

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ServiceError, match="config field"):
            parse_job_request({
                "kind": "optimize", "benchmark": "c17",
                "config": {"warp_factor": 9},
            })

    def test_config_overrides_apply(self):
        request = parse_job_request({
            "kind": "optimize", "benchmark": "c17",
            "config": {"max_passes": 3},
        })
        assert request.spec.config.max_passes == 3

    @pytest.mark.parametrize("samples", [0, -5, 1.5, True])
    def test_bad_samples_rejected(self, samples):
        with pytest.raises(ServiceError, match="samples"):
            parse_job_request({
                "kind": "mc", "benchmark": "c17", "samples": samples,
            })

    def test_campaign_error_text_passes_through(self):
        # Validation is the campaign layer's own: its message survives.
        with pytest.raises(ServiceError, match="invalid optimize request"):
            parse_job_request({
                "kind": "optimize", "benchmark": "c17", "margin": -2.0,
            })
