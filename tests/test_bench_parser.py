"""ISCAS .bench reading and writing."""

import itertools

import pytest

from repro.circuit import C17_BENCH, parse_bench, write_bench
from repro.errors import BenchFormatError


def simulate(circuit, input_values):
    values = dict(input_values)
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        cell = circuit.cell_of(gate)
        values[name] = cell.evaluate([values[f] for f in gate.fanins])
    return values


class TestParse:
    def test_c17_structure(self, lib):
        c = parse_bench(C17_BENCH, lib, name="c17")
        assert len(c.inputs) == 5
        assert len(c.outputs) == 2
        assert c.n_gates == 6
        assert all(g.cell_name == "NAND2" for g in c.gates())

    def test_c17_truth_sample(self, lib):
        # Reference: 22 = NAND(10,16), functionally checked at a few points
        # against hand evaluation of the published netlist.
        c = parse_bench(C17_BENCH, lib, name="c17")
        v = simulate(c, {"1": True, "2": True, "3": True, "6": True, "7": True})
        # 10=NAND(1,3)=F, 11=NAND(3,6)=F, 16=NAND(2,11)=T, 19=NAND(11,7)=T
        # 22=NAND(10,16)=T, 23=NAND(16,19)=F
        assert v["22"] is True
        assert v["23"] is False

    def test_comments_and_blanks_ignored(self, lib):
        text = """
        # leading comment

        INPUT(a)  # trailing comment
        OUTPUT(y)
        y = NOT(a)
        """
        c = parse_bench(text, lib)
        assert c.n_gates == 1

    def test_wide_gate_decomposed(self, lib):
        text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(y)\n"
        text += "y = NAND(a, b, c, d, e)\n"
        c = parse_bench(text, lib)
        assert c.n_gates > 1
        for bits in itertools.product((False, True), repeat=5):
            v = simulate(c, dict(zip("abcde", bits)))
            assert v["y"] == (not all(bits))

    def test_dff_cut_into_ports(self, lib):
        text = (
            "INPUT(clkin)\nOUTPUT(q)\n"
            "q = NOT(state)\n"
            "state = DFF(next)\n"
            "next = NAND(clkin, q)\n"
        )
        c = parse_bench(text, lib)
        # DFF output becomes a pseudo input; its D pin a pseudo output.
        assert "state" in c.inputs
        assert "next" in c.outputs

    def test_dff_rejected_when_disallowed(self, lib):
        text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"
        with pytest.raises(BenchFormatError, match="DFF"):
            parse_bench(text, lib, dff_as_ports=False)

    def test_unsupported_function_rejected(self, lib):
        text = "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n"
        with pytest.raises(BenchFormatError, match="unsupported function"):
            parse_bench(text, lib)

    def test_garbage_line_rejected(self, lib):
        with pytest.raises(BenchFormatError, match="cannot parse"):
            parse_bench("INPUT(a)\nOUTPUT(a)\nthis is not bench\n", lib)

    def test_line_number_in_error(self, lib):
        try:
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", lib, name="t")
        except BenchFormatError as err:
            assert "t:3" in str(err)
        else:
            pytest.fail("expected BenchFormatError")


class TestWrite:
    def test_round_trip_preserves_function(self, lib):
        original = parse_bench(C17_BENCH, lib, name="c17")
        rewritten = parse_bench(write_bench(original), lib, name="c17rt")
        assert rewritten.n_gates == original.n_gates
        for bits in itertools.product((False, True), repeat=5):
            assign = dict(zip(original.inputs, bits))
            v1 = simulate(original, assign)
            v2 = simulate(rewritten, assign)
            for out in original.outputs:
                assert v1[out] == v2[out]

    def test_written_text_has_ports(self, lib):
        text = write_bench(parse_bench(C17_BENCH, lib))
        assert "INPUT(1)" in text
        assert "OUTPUT(22)" in text
        assert "= NAND(" in text

    def test_all_library_cells_writable(self, lib, rca8):
        # The adder uses XOR/AND/OR; writing must map every cell.
        text = write_bench(rca8)
        reread = parse_bench(text, lib, name="rt")
        assert reread.n_gates >= rca8.n_gates
