"""Purity / effect summaries: local layer, fixpoint, and IO detection."""

import textwrap

import pytest

from repro.lint.analysis import (
    DOES_IO,
    READS_GLOBAL,
    WRITES_GLOBAL,
    CallGraph,
    EffectAnalysis,
    GlobalStateInventory,
    ModuleIndex,
    PackageSymbols,
)


def build_effects(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, source in {"__init__.py": "", **files}.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    symbols = PackageSymbols(ModuleIndex.load(root))
    graph = CallGraph.build(symbols)
    inventory = GlobalStateInventory.build(symbols)
    return EffectAnalysis(symbols, graph, inventory)


@pytest.fixture
def effects(tmp_path):
    return build_effects(tmp_path, {
        "m.py": """
            import os

            CACHE = {}

            def pure(x):
                return x * 2

            def reader(x):
                return CACHE.get(x)

            def writer(x):
                CACHE[x] = True

            def printer(x):
                print(x)
                return x

            def env_user():
                return os.environ.get("HOME")

            def outer(x):
                return pure(reader(x))

            def two_hops(x):
                return outer(x)
        """,
    })


class TestLocalLayer:
    def test_pure_function_has_empty_sets(self, effects):
        summary = effects.get("pkg.m.pure")
        assert summary.pure
        assert summary.local == frozenset()
        assert summary.details == ()

    def test_global_read_detected(self, effects):
        summary = effects.get("pkg.m.reader")
        assert READS_GLOBAL in summary.local
        assert any("reads pkg.m.CACHE" in d for d in summary.details)

    def test_global_write_detected(self, effects):
        summary = effects.get("pkg.m.writer")
        assert WRITES_GLOBAL in summary.local
        assert any("writes pkg.m.CACHE" in d for d in summary.details)

    def test_io_call_detected(self, effects):
        summary = effects.get("pkg.m.printer")
        assert DOES_IO in summary.local
        [touch] = effects.io_in("pkg.m.printer")
        assert touch.category == "stream"
        assert touch.what == "print()"

    def test_env_access_categorized(self, effects):
        [touch] = effects.io_in("pkg.m.env_user")
        assert touch.category == "env"
        assert touch.what.startswith("os.environ")

    def test_unknown_qualname_returns_none(self, effects):
        assert effects.get("pkg.m.missing") is None
        assert effects.io_in("pkg.m.missing") == ()


class TestFixpoint:
    def test_caller_inherits_callee_effects(self, effects):
        summary = effects.get("pkg.m.outer")
        assert summary.local == frozenset()
        assert READS_GLOBAL in summary.total
        assert not summary.pure

    def test_transitive_propagation_two_hops(self, effects):
        summary = effects.get("pkg.m.two_hops")
        assert READS_GLOBAL in summary.total

    def test_carriers_name_the_introducing_callee(self, effects):
        summary = effects.get("pkg.m.outer")
        assert (READS_GLOBAL, "pkg.m.reader") in summary.carriers

    def test_recursive_functions_converge(self, tmp_path):
        effects = build_effects(tmp_path, {
            "r.py": """
                LOG = []

                def ping(n):
                    if n:
                        LOG.append(n)
                        return pong(n - 1)
                    return 0

                def pong(n):
                    return ping(n)
            """,
        })
        for name in ("pkg.r.ping", "pkg.r.pong"):
            assert WRITES_GLOBAL in effects.get(name).total

    def test_unresolved_calls_contribute_nothing(self, tmp_path):
        effects = build_effects(tmp_path, {
            "u.py": """
                def caller(fn):
                    return fn()
            """,
        })
        # under-approximation: an opaque callable proves no effect
        assert effects.get("pkg.u.caller").pure
