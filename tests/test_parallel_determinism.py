"""Bitwise determinism of every sharded MC entry point across n_jobs.

The contract under test: at a fixed seed, ``n_jobs`` moves wall time and
nothing else.  Means, percentiles, and the raw per-die arrays must be
bitwise identical for any worker count, and a same-seed re-run must
reproduce the first run exactly.

Multi-worker cases skip on single-CPU runners (forking a pool there only
tests the scheduler); set ``REPRO_FORCE_PARALLEL_TESTS=1`` to force them
— determinism holds regardless, the skip is about runner economy.
"""

import os

import numpy as np
import pytest

from repro.core import OptimizerConfig, optimize_statistical
from repro.power import run_monte_carlo_leakage
from repro.timing import mc_timing_yield, run_monte_carlo_sta, run_ssta
from repro.timing.graph import TimingView
from repro.timing.mc import LevelSchedule, _propagate_delays, draw_samples

requires_multicore = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2 and not os.environ.get("REPRO_FORCE_PARALLEL_TESTS"),
    reason="single-CPU runner; set REPRO_FORCE_PARALLEL_TESTS=1 to force",
)

SAMPLES = 3000
SEED = 77


def leakage_fingerprint(circuit, varmodel, n_jobs, keep_samples=True):
    mc = run_monte_carlo_leakage(
        circuit, varmodel, n_samples=SAMPLES, seed=SEED,
        n_jobs=n_jobs, keep_samples=keep_samples,
    )
    return mc


def timing_fingerprint(circuit, varmodel, n_jobs, keep_samples=True):
    mc = run_monte_carlo_sta(
        circuit, varmodel, n_samples=SAMPLES, seed=SEED,
        n_jobs=n_jobs, keep_samples=keep_samples,
    )
    return mc


class TestSerialReproducibility:
    def test_leakage_same_seed_identical(self, rca8, varmodel_rca8):
        a = leakage_fingerprint(rca8, varmodel_rca8, n_jobs=1)
        b = leakage_fingerprint(rca8, varmodel_rca8, n_jobs=1)
        assert np.array_equal(a.currents, b.currents)
        assert a.mean_power == b.mean_power
        assert a.percentile_power(0.95) == b.percentile_power(0.95)

    def test_timing_same_seed_identical(self, rca8, varmodel_rca8):
        a = timing_fingerprint(rca8, varmodel_rca8, n_jobs=1)
        b = timing_fingerprint(rca8, varmodel_rca8, n_jobs=1)
        assert np.array_equal(a.circuit_delays, b.circuit_delays)
        assert a.mean == b.mean
        assert a.percentile(0.95) == b.percentile(0.95)

    def test_common_random_numbers_across_metrics(self, rca8, varmodel_rca8):
        # Leakage and timing MC at the same seed see the same dies: the
        # shard streams depend only on (n_samples, seed), not the metric.
        leak = leakage_fingerprint(rca8, varmodel_rca8, n_jobs=1)
        timing = timing_fingerprint(rca8, varmodel_rca8, n_jobs=1)
        assert np.array_equal(leak.samples.z, timing.samples.z)
        assert np.array_equal(leak.samples.delta_vth, timing.samples.delta_vth)


@requires_multicore
class TestWorkerCountInvariance:
    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_leakage_bitwise_identical(self, rca8, varmodel_rca8, n_jobs):
        serial = leakage_fingerprint(rca8, varmodel_rca8, n_jobs=1)
        parallel = leakage_fingerprint(rca8, varmodel_rca8, n_jobs=n_jobs)
        assert np.array_equal(serial.currents, parallel.currents)
        assert serial.mean_power == parallel.mean_power
        assert serial.std_power == parallel.std_power
        for q in (0.05, 0.5, 0.95, 0.99):
            assert serial.percentile_power(q) == parallel.percentile_power(q)

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_timing_bitwise_identical(self, rca8, varmodel_rca8, n_jobs):
        serial = timing_fingerprint(rca8, varmodel_rca8, n_jobs=1)
        parallel = timing_fingerprint(rca8, varmodel_rca8, n_jobs=n_jobs)
        assert np.array_equal(serial.circuit_delays, parallel.circuit_delays)
        assert serial.mean == parallel.mean
        assert serial.std == parallel.std
        for q in (0.05, 0.5, 0.95, 0.99):
            assert serial.percentile(q) == parallel.percentile(q)

    def test_timing_yield_bitwise_identical(self, rca8, varmodel_rca8):
        ssta = run_ssta(rca8, varmodel_rca8)
        target = ssta.circuit_delay.percentile(0.9)
        serial = mc_timing_yield(
            rca8, varmodel_rca8, target, n_samples=SAMPLES, seed=SEED, n_jobs=1
        )
        parallel = mc_timing_yield(
            rca8, varmodel_rca8, target, n_samples=SAMPLES, seed=SEED, n_jobs=4
        )
        assert serial.timing_yield == parallel.timing_yield
        assert serial.n_samples == parallel.n_samples == SAMPLES

    def test_keep_samples_does_not_change_statistics(self, rca8, varmodel_rca8):
        full = timing_fingerprint(rca8, varmodel_rca8, n_jobs=2, keep_samples=True)
        lean = timing_fingerprint(rca8, varmodel_rca8, n_jobs=2, keep_samples=False)
        assert lean.samples is None
        assert full.samples is not None
        assert np.array_equal(full.circuit_delays, lean.circuit_delays)
        assert full.mean == lean.mean
        assert full.percentile(0.95) == lean.percentile(0.95)

    def test_mc_yield_optimizer_path_deterministic(self, c17, spec):
        # The optimizer's MC-feasibility mode must be reproducible across
        # worker counts too: same moves, same final implementation state.
        # (optimize_statistical resets the implementation before running,
        # so back-to-back runs on one circuit start from identical state.)
        from repro.circuit import build_variation_model

        vm = build_variation_model(c17, spec)
        results = []
        for n_jobs in (1, 2):
            config = OptimizerConfig(
                yield_mc_samples=800, yield_mc_seed=5, n_jobs=n_jobs
            )
            out = optimize_statistical(c17, spec, vm, config=config)
            results.append((out.moves_applied, out.final_assignment))
        assert results[0] == results[1]


def naive_propagate(samples, nominal, sens_l, sens_v, fanin_gates, po):
    """The historical per-gate arrival loop, kept as the bitwise oracle.

    This is the scalar implementation the levelized batch pass replaced;
    the vectorized path must reproduce it to the last bit, not merely to
    tolerance — MC is the repo's golden reference and its distribution
    may not move under a performance rewrite.
    """
    x = sens_l * samples.delta_l + sens_v * samples.delta_vth
    gate_delays = nominal * (1.0 + x + 0.5 * x * x)
    arrivals = np.empty_like(gate_delays)
    for i in range(nominal.shape[0]):
        fanins = fanin_gates[i]
        if fanins.size:
            worst = arrivals[:, fanins].max(axis=1)
            arrivals[:, i] = worst + gate_delays[:, i]
        else:
            arrivals[:, i] = gate_delays[:, i]
    return arrivals[:, po].max(axis=1)


class TestVectorizedPropagation:
    @pytest.mark.parametrize("fixture", ["c17", "rca8"])
    def test_bitwise_identical_to_naive_reference(self, fixture, request, spec):
        from repro.circuit import build_variation_model

        circuit = request.getfixturevalue(fixture)
        vm = build_variation_model(circuit, spec)
        view = TimingView(circuit)
        samples = draw_samples(vm, 500, seed=SEED,
                               relative_area=view.rdf_relative_area())
        nominal = view.nominal_delays()
        vths = view.vths()
        sens_l = np.array(
            [view.library.drive_model(v).d_lnr_d_deltal for v in vths]
        )
        sens_v = np.array(
            [view.library.drive_model(v).d_lnr_d_deltavth for v in vths]
        )
        fanin_gates = tuple(view.fanin_gates)
        po = view.primary_output_indices()
        schedule = LevelSchedule.build(fanin_gates)
        fast = _propagate_delays(samples, nominal, sens_l, sens_v, schedule, po)
        slow = naive_propagate(samples, nominal, sens_l, sens_v, fanin_gates, po)
        assert np.array_equal(fast, slow)

    def test_schedule_is_a_partition_respecting_ranks(self, rca8):
        view = TimingView(rca8)
        fanin_gates = tuple(view.fanin_gates)
        schedule = LevelSchedule.build(fanin_gates)
        seen = np.concatenate([gates for gates, _ in schedule.levels])
        assert sorted(seen.tolist()) == list(range(view.n_gates))
        rank_of = np.empty(view.n_gates, dtype=int)
        for rank, (gates, _) in enumerate(schedule.levels):
            rank_of[gates] = rank
        for g in range(view.n_gates):
            for f in fanin_gates[g]:
                assert rank_of[f] < rank_of[g]

    def test_schedule_pads_with_sentinel_column(self, rca8):
        view = TimingView(rca8)
        fanin_gates = tuple(view.fanin_gates)
        schedule = LevelSchedule.build(fanin_gates)
        assert schedule.n_gates == view.n_gates
        gates0, matrix0 = schedule.levels[0]
        assert matrix0.size == 0  # rank 0 is the fanin-free gates
        for gates, matrix in schedule.levels[1:]:
            for row, g in enumerate(gates):
                fanins = fanin_gates[g]
                assert np.array_equal(matrix[row, : fanins.size], fanins)
                assert (matrix[row, fanins.size:] == view.n_gates).all()

    def test_empty_circuit_schedule(self):
        schedule = LevelSchedule.build(())
        assert schedule.n_gates == 0
        assert schedule.levels == ()
