"""Spatial-correlation grid model and its PCA factorization."""

import numpy as np
import pytest

from repro.errors import VariationError
from repro.variation import SpatialCorrelationModel, field_samples


@pytest.fixture
def model():
    return SpatialCorrelationModel(grid_dim=4, die_size=2e-3, correlation_length=1e-3)


class TestConstruction:
    def test_dimensions(self, model):
        assert model.n_cells == 16
        assert 1 <= model.n_factors <= 16
        assert model.loadings.shape == (16, model.n_factors)

    def test_unit_variance_rows(self, model):
        # Each cell's field value should have ~unit variance (up to the
        # truncated PCA energy).
        variances = (model.loadings**2).sum(axis=1)
        assert np.all(variances > 0.98)
        assert np.all(variances <= 1.0 + 1e-9)

    def test_energy_truncation_reduces_factors(self):
        full = SpatialCorrelationModel(5, 2e-3, 1e-3, energy=1.0)
        truncated = SpatialCorrelationModel(5, 2e-3, 1e-3, energy=0.9)
        assert truncated.n_factors < full.n_factors

    def test_parameter_validation(self):
        with pytest.raises(VariationError):
            SpatialCorrelationModel(0, 1e-3, 1e-3)
        with pytest.raises(VariationError):
            SpatialCorrelationModel(4, -1.0, 1e-3)
        with pytest.raises(VariationError):
            SpatialCorrelationModel(4, 1e-3, 1e-3, energy=0.0)


class TestCorrelationStructure:
    def test_self_correlation_is_one(self, model):
        assert model.correlation(5, 5) == pytest.approx(1.0)

    def test_decays_with_distance(self, model):
        # Cell 0 is a corner; cell 1 is adjacent; cell 15 opposite corner.
        near = model.correlation(0, 1)
        far = model.correlation(0, 15)
        assert near > far > 0.0

    def test_matches_exponential_at_full_energy(self):
        model = SpatialCorrelationModel(4, 2e-3, 1e-3, energy=1.0)
        step = 2e-3 / 4
        expected = np.exp(-step / 1e-3)
        assert model.correlation(0, 1) == pytest.approx(expected, rel=1e-6)

    def test_cell_of_position(self, model):
        assert model.cell_of_position(0.0, 0.0) == 0
        assert model.cell_of_position(2e-3, 2e-3) == 15
        # Center of cell (row 1, col 2).
        step = 2e-3 / 4
        assert model.cell_of_position(2.5 * step, 1.5 * step) == 1 * 4 + 2

    def test_position_outside_die_rejected(self, model):
        with pytest.raises(VariationError):
            model.cell_of_position(3e-3, 0.0)


class TestFieldSamples:
    def test_shapes_and_determinism(self, model):
        rng = np.random.default_rng(1)
        z, values = field_samples(model, 500, rng)
        assert z.shape == (500, model.n_factors)
        assert values.shape == (500, 16)
        z2, values2 = field_samples(model, 500, np.random.default_rng(1))
        assert np.allclose(values, values2)

    def test_sample_covariance_matches_model(self, model):
        rng = np.random.default_rng(2)
        _, values = field_samples(model, 20000, rng)
        corr = np.corrcoef(values[:, 0], values[:, 1])[0, 1]
        assert corr == pytest.approx(model.correlation(0, 1), abs=0.03)

    def test_invalid_sample_count(self, model):
        with pytest.raises(VariationError):
            field_samples(model, 0, np.random.default_rng(0))
