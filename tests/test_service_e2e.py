"""The job service end to end, over real HTTP.

One live service (background event loop, subprocess workers) shared by
the whole module; every assertion goes through the wire — submission,
polling, NDJSON event streams, artifact bytes, Prometheus scrape — the
way an external client would see it.
"""

import json
import time

import pytest

from repro.campaign import ArtifactStore, EventLedger, resolve_spec
from repro.cli import main as cli_main
from repro.errors import ServiceError
from repro.service import ServiceClient, ServiceThread, TenantPolicy, spec_to_wire


def smoke_spec():
    """The fast smoke campaign: one benchmark, no MC validation stage."""
    return resolve_spec("paper-sweep-smoke").with_overrides(
        benchmarks=("c17",), mc_samples=0,
    )


def campaign_request(tenant, margin=None, seed=0):
    import dataclasses

    spec = smoke_spec()
    if margin is not None:
        spec = dataclasses.replace(spec, margins=(margin,))
    return {
        "kind": "campaign", "tenant": tenant, "seed": seed,
        "spec": spec_to_wire(spec),
    }


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-root")
    with ServiceThread(root=root, workers=4) as handle:
        yield handle


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.url)


class TestLifecycle:
    def test_healthz(self, client):
        health = client.health()
        assert health["ok"] is True
        assert health["workers"] == 4

    def test_two_tenants_three_concurrent_campaigns_each(self, service, client):
        """Six campaigns from two tenants run concurrently to success,
        with full event replay and per-tenant artifact namespaces."""
        margins = (1.05, 1.10, 1.15)
        submitted = [
            client.submit(campaign_request(tenant, margin=m))
            for tenant in ("acme", "zenith")
            for m in margins
        ]
        assert len({r["job_id"] for r in submitted}) == 6
        start = time.monotonic()
        finals = [client.wait(r["job_id"], timeout=300) for r in submitted]
        elapsed = time.monotonic() - start
        assert [f["state"] for f in finals] == ["succeeded"] * 6
        # True concurrency: the wall-clock for all six is less than the
        # sum of their individual run times (4 workers, 6 jobs).
        total_run = sum(f["run_seconds"] for f in finals)
        assert elapsed < total_run, (elapsed, total_run)
        # Each tenant's store holds its own artifacts and not implicitly
        # the other's namespace.
        for final in finals:
            tenant = final["tenant"]
            for task in final["summary"]["tasks"]:
                assert task["state"] in ("succeeded", "cached")
                raw = client.artifact(task["key"], tenant=tenant)
                json.loads(raw)  # complete, parseable payloads

    def test_event_stream_replays_the_full_ledger(self, service, client):
        record = client.submit(campaign_request("streamer"))
        job_id = record["job_id"]
        streamed = list(client.events(job_id))
        # The stream terminated, so the job settled and the stream
        # covered everything durable: submission to settlement.
        names = [e["event"] for e in streamed]
        assert names[0] == "job_submitted"
        assert names[-1] == "job_finished"
        assert "run_started" in names and "run_finished" in names
        ledger = EventLedger(
            service.service.job_ledger_path("streamer", job_id)
        )
        assert streamed == ledger.replay()

    def test_job_listing_and_polling(self, client):
        record = client.submit(campaign_request("poller"))
        final = client.wait(record["job_id"], timeout=300)
        assert final["kind"] == "campaign"
        assert final["summary"]["ok"] is True
        assert final["queue_seconds"] >= 0.0
        assert any(
            r["job_id"] == record["job_id"] for r in client.jobs()
        )


class TestBitwiseContract:
    def test_artifacts_match_cli_campaign_run_bitwise(
        self, service, client, tmp_path
    ):
        """Artifacts fetched over HTTP are byte-for-byte the files
        ``repro campaign run`` writes for the same spec."""
        record = client.submit(campaign_request("bitwise"))
        final = client.wait(record["job_id"], timeout=300)
        assert final["state"] == "succeeded"
        cli_store = tmp_path / "cli-store"
        code = cli_main([
            "campaign", "run", "paper-sweep-smoke",
            "--store", str(cli_store),
            "--benchmarks", "c17", "--mc-samples", "0",
        ])
        assert code == 0
        store = ArtifactStore(cli_store)
        tasks = final["summary"]["tasks"]
        assert tasks, "job summary carries the task->key map"
        for task in tasks:
            fetched = client.artifact(task["key"], tenant="bitwise")
            local = store.artifact_path(task["key"]).read_bytes()
            assert fetched == local, f"artifact differs for {task['task']}"


class TestRefusals:
    def test_burst_beyond_bucket_gets_429_with_retry_after(self, tmp_path):
        policy = TenantPolicy(burst=2.0, refill_per_s=0.01)
        with ServiceThread(root=tmp_path / "root", workers=1,
                           policy=policy) as handle:
            client = ServiceClient(handle.url)
            client.submit(campaign_request("bursty"))
            client.submit(campaign_request("bursty"))
            with pytest.raises(ServiceError) as err:
                client.submit(campaign_request("bursty"))
            assert err.value.status == 429
            assert float(err.value.retry_after) > 0
            # Another tenant's bucket is unaffected.
            client.submit(campaign_request("calm"))

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.job("j999999")
        assert err.value.status == 404

    def test_unknown_artifact_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.artifact("f" * 64, tenant="acme")
        assert err.value.status == 404

    def test_malformed_body_400(self, client):
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=30)
        try:
            conn.request("POST", "/v1/jobs", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert "error" in json.loads(response.read())
        finally:
            conn.close()

    def test_invalid_request_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit({"kind": "optimize"})  # no benchmark
        assert err.value.status == 400

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request_json("GET", "/v2/everything")
        assert err.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServiceError) as err:
            client._request_json("POST", "/v1/artifacts/" + "a" * 64)
        assert err.value.status == 405

    def test_bad_tenant_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit({
                "kind": "optimize", "benchmark": "c17",
                "tenant": "../escape",
            })
        assert err.value.status == 400


class TestMetrics:
    def test_scrape_reflects_traffic(self, client):
        client.health()
        text = client.metrics()
        assert "# TYPE repro_service_requests_total counter" in text
        assert 'repro_service_jobs_total{state="succeeded"}' in text
        assert "repro_service_request_seconds" in text
        assert "repro_service_queue_wait_seconds" in text
