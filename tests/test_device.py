"""Analytic transistor model: leakage/drive physics and sensitivities."""

import math

import numpy as np
import pytest

from repro.errors import TechnologyError
from repro.tech import (
    ChannelType,
    VthClass,
    delay_penalty_ratio,
    effective_vth,
    equivalent_resistance,
    gate_input_capacitance,
    junction_capacitance,
    leakage_ratio,
    log_leakage_sensitivities,
    log_resistance_sensitivities,
    off_current,
    on_current,
    subthreshold_current,
)


class TestEffectiveVth:
    def test_nominal_point(self, tech):
        vth = effective_vth(tech, VthClass.LOW, ChannelType.NMOS)
        assert vth == pytest.approx(tech.vth_low)

    def test_shorter_channel_lowers_vth(self, tech):
        nominal = effective_vth(tech, VthClass.LOW, ChannelType.NMOS)
        short = effective_vth(tech, VthClass.LOW, ChannelType.NMOS, delta_l=-5e-9)
        assert short < nominal

    def test_direct_shift_adds(self, tech):
        shifted = effective_vth(
            tech, VthClass.LOW, ChannelType.NMOS, delta_vth0=0.03
        )
        assert shifted == pytest.approx(tech.vth_low + 0.03)

    def test_vectorized_over_deltas(self, tech):
        dl = np.array([-5e-9, 0.0, 5e-9])
        vth = effective_vth(tech, VthClass.LOW, ChannelType.NMOS, delta_l=dl)
        assert vth.shape == (3,)
        assert np.all(np.diff(vth) > 0)


class TestSubthresholdCurrent:
    def test_exponential_in_vth(self, tech):
        w = tech.wmin
        i1 = subthreshold_current(tech, ChannelType.NMOS, w, 0.20)
        i2 = subthreshold_current(tech, ChannelType.NMOS, w, 0.20 + 0.06)
        # One 60 mV step at n=1.4, vT~25.9mV: factor exp(0.06/(n vT)) ~ 5.2.
        expected = math.exp(0.06 / (tech.subthreshold_n * tech.thermal_voltage))
        assert i1 / i2 == pytest.approx(expected, rel=1e-6)

    def test_linear_in_width(self, tech):
        i1 = subthreshold_current(tech, ChannelType.NMOS, tech.wmin, 0.2)
        i2 = subthreshold_current(tech, ChannelType.NMOS, 3 * tech.wmin, 0.2)
        assert i2 / i1 == pytest.approx(3.0)

    def test_vgs_increases_current(self, tech):
        off = subthreshold_current(tech, ChannelType.NMOS, tech.wmin, 0.2, vgs=0.0)
        on_ish = subthreshold_current(tech, ChannelType.NMOS, tech.wmin, 0.2, vgs=0.1)
        assert on_ish > off

    def test_zero_vds_blocks_current(self, tech):
        i = subthreshold_current(tech, ChannelType.NMOS, tech.wmin, 0.2, vds=0.0)
        assert i == pytest.approx(0.0)

    def test_rejects_nonpositive_width(self, tech):
        with pytest.raises(TechnologyError):
            subthreshold_current(tech, ChannelType.NMOS, 0.0, 0.2)

    def test_off_current_magnitude_band(self, tech):
        # Low-Vth 100 nm device: tens of nA per um is the plausible band.
        per_um = off_current(tech, VthClass.LOW, ChannelType.NMOS, 1e-6)
        assert 1e-8 < per_um < 1e-6


class TestOnCurrent:
    def test_higher_vth_less_drive(self, tech):
        lo = on_current(tech, ChannelType.NMOS, tech.wmin, tech.vth_low)
        hi = on_current(tech, ChannelType.NMOS, tech.wmin, tech.vth_high)
        assert lo > hi

    def test_linear_in_width(self, tech):
        i1 = on_current(tech, ChannelType.NMOS, tech.wmin, 0.2)
        i2 = on_current(tech, ChannelType.NMOS, 2 * tech.wmin, 0.2)
        assert i2 / i1 == pytest.approx(2.0)

    def test_nmos_stronger_than_pmos(self, tech):
        n = on_current(tech, ChannelType.NMOS, tech.wmin, 0.2)
        p = on_current(tech, ChannelType.PMOS, tech.wmin, 0.2)
        assert n > p

    def test_overdrive_clamp_never_negative(self, tech):
        # Vth above Vdd would give a negative overdrive; the clamp keeps a
        # tiny positive drive instead of a crash or negative current.
        i = on_current(tech, ChannelType.NMOS, tech.wmin, tech.vdd + 0.1)
        assert i > 0.0

    def test_rejects_nonpositive_width(self, tech):
        with pytest.raises(TechnologyError):
            on_current(tech, ChannelType.NMOS, -1e-7, 0.2)


class TestResistanceAndCaps:
    def test_resistance_inverse_of_current(self, tech):
        r = equivalent_resistance(tech, ChannelType.NMOS, tech.wmin, 0.2)
        i = on_current(tech, ChannelType.NMOS, tech.wmin, 0.2)
        assert r == pytest.approx(0.75 * tech.vdd / i)

    def test_caps_linear_in_width(self, tech):
        assert gate_input_capacitance(tech, 2 * tech.wmin) == pytest.approx(
            2 * gate_input_capacitance(tech, tech.wmin)
        )
        assert junction_capacitance(tech, 2 * tech.wmin) == pytest.approx(
            2 * junction_capacitance(tech, tech.wmin)
        )

    def test_caps_reject_nonpositive_width(self, tech):
        with pytest.raises(TechnologyError):
            gate_input_capacitance(tech, 0.0)
        with pytest.raises(TechnologyError):
            junction_capacitance(tech, -1.0)


class TestSensitivities:
    def test_log_leakage_signs(self, tech):
        d_dl, d_dv = log_leakage_sensitivities(tech)
        # Longer channel and higher Vth both cut leakage.
        assert d_dl < 0
        assert d_dv < 0

    def test_log_leakage_matches_finite_difference(self, tech):
        d_dl, d_dv = log_leakage_sensitivities(tech)
        w = tech.wmin
        eps_l, eps_v = 1e-11, 1e-5
        base = off_current(tech, VthClass.LOW, ChannelType.NMOS, w)
        bump_l = off_current(tech, VthClass.LOW, ChannelType.NMOS, w, delta_l=eps_l)
        bump_v = off_current(
            tech, VthClass.LOW, ChannelType.NMOS, w, delta_vth0=eps_v
        )
        fd_l = (math.log(bump_l) - math.log(base)) / eps_l
        fd_v = (math.log(bump_v) - math.log(base)) / eps_v
        assert fd_l == pytest.approx(d_dl, rel=1e-3)
        assert fd_v == pytest.approx(d_dv, rel=1e-3)

    def test_log_resistance_signs(self, tech):
        d_dl, d_dv = log_resistance_sensitivities(tech, VthClass.LOW, ChannelType.NMOS)
        # Longer channel and higher Vth both slow the device.
        assert d_dl > 0
        assert d_dv > 0

    def test_high_vth_more_delay_sensitive(self, tech):
        # Less overdrive means delay reacts more to the same Vth shift.
        _, low = log_resistance_sensitivities(tech, VthClass.LOW, ChannelType.NMOS)
        _, high = log_resistance_sensitivities(tech, VthClass.HIGH, ChannelType.NMOS)
        assert high > low


class TestFiguresOfMerit:
    def test_leakage_ratio_band(self, tech):
        # Dual-Vth processes of the era: ~10-100x off-current ratio.
        assert 10.0 < leakage_ratio(tech) < 100.0

    def test_delay_penalty_band(self, tech):
        # High-Vth speed cost: ~15-40%.
        assert 1.10 < delay_penalty_ratio(tech) < 1.45
