"""Hypothesis round-trip properties on netlist serialization.

Random circuit profiles are generated, written to ``.bench`` and Verilog,
re-read, and checked for functional equivalence on sampled input vectors —
the strongest cheap guarantee that the format code never silently
corrupts logic.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import (
    parse_bench,
    parse_verilog,
    random_logic,
    write_bench,
    write_verilog,
)
from repro.tech import Library, get_technology

LIB = Library(get_technology("ptm100"))


def simulate(circuit, assignment):
    values = dict(assignment)
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        cell = circuit.cell_of(gate)
        values[name] = cell.evaluate([values[f] for f in gate.fanins])
    return [values[o] for o in circuit.outputs]


profiles = st.tuples(
    st.integers(3, 10),   # inputs
    st.integers(1, 4),    # outputs
    st.integers(8, 40),   # gates
    st.integers(2, 6),    # depth
    st.integers(0, 10_000),  # seed
)


@given(profile=profiles)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_bench_round_trip_preserves_function(profile):
    n_in, n_out, n_gates, depth, seed = profile
    original = random_logic(LIB, "rt", n_in, n_out, n_gates, depth, seed=seed)
    reread = parse_bench(write_bench(original), LIB, name="rt2")
    assert reread.inputs == original.inputs
    assert reread.outputs == original.outputs
    rng = np.random.default_rng(seed)
    for _ in range(8):
        bits = rng.integers(0, 2, size=len(original.inputs)).astype(bool)
        assignment = dict(zip(original.inputs, bits))
        assert simulate(reread, assignment) == simulate(original, assignment)


@given(profile=profiles)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_verilog_round_trip_preserves_function(profile):
    n_in, n_out, n_gates, depth, seed = profile
    original = random_logic(LIB, "rt", n_in, n_out, n_gates, depth, seed=seed)
    reread = parse_verilog(write_verilog(original), LIB)
    assert len(reread.inputs) == len(original.inputs)
    assert len(reread.outputs) == len(original.outputs)
    rng = np.random.default_rng(seed + 1)
    for _ in range(8):
        bits = rng.integers(0, 2, size=len(original.inputs)).astype(bool)
        orig_assign = dict(zip(original.inputs, bits))
        rt_assign = dict(zip(reread.inputs, bits))
        assert simulate(reread, rt_assign) == simulate(original, orig_assign)


@given(profile=profiles)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_generated_circuits_always_valid(profile):
    n_in, n_out, n_gates, depth, seed = profile
    circuit = random_logic(LIB, "gen", n_in, n_out, n_gates, depth, seed=seed)
    # Structural invariants the generator must always satisfy.
    assert circuit.depth >= 1
    for pi in circuit.inputs:
        assert circuit.fanout_of(pi)
    driven = {f for g in circuit.gates() for f in g.fanins}
    outputs = set(circuit.outputs)
    for gate in circuit.gates():
        assert gate.name in driven or gate.name in outputs
