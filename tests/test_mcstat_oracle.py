"""Statistical-correctness harness for the variance-reduced estimators.

Every estimator is held to the same four contracts, checked against the
closed-form :class:`~tests.conftest.EstimatorOracle`:

* **Accuracy** — the estimate lands within a few reported standard
  errors of the exact Phi yield (the toy kernel is linear in Gaussians,
  so truth is analytic, not itself sampled);
* **Variance reduction** — at a matched sample count and committed
  seed, every smart estimator reports a smaller standard error than
  plain MC, and the error it reports is honest (the CI contains truth);
* **Coverage** — over 200 fixed-seed replicates, the nominal-95% CI
  covers truth at least the binomial-expected fraction of the time
  (0.95 minus three binomial sigmas, with one-replicate slack for
  platform float drift);
* **Bitwise determinism** — identical estimates for any ``n_jobs``,
  across reruns, and through the real timing driver on a real circuit;
  changing the seed changes the answer.
"""

import os

import pytest

from repro.errors import EstimatorError
from repro.mcstat import (
    ESTIMATOR_NAMES,
    EstimatorContext,
    IsleEstimator,
    get_estimator,
)
from repro.timing import estimate_timing_yield, mc_timing_yield

requires_multicore = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2 and not os.environ.get("REPRO_FORCE_PARALLEL_TESTS"),
    reason="single-CPU runner; set REPRO_FORCE_PARALLEL_TESTS=1 to force",
)

ALL = list(ESTIMATOR_NAMES)
SMART = [n for n in ALL if n != "plain"]
SEED = 42
SAMPLES = 4096

# Coverage floor: binomial-expected 0.95 - 3 sigma over 200 replicates
# (~0.904), minus one replicate (0.005) of slack for float drift.
COVERAGE_REPLICATES = 200
COVERAGE_FLOOR = 0.895


class TestClosedFormAccuracy:
    @pytest.mark.parametrize("name", ALL)
    @pytest.mark.parametrize("eta", [0.95, 0.99])
    def test_estimate_matches_exact_yield(self, oracle, name, eta):
        target = oracle.target_at(eta)
        est = oracle.run(name, target, SAMPLES, seed=SEED)
        tolerance = 5.0 * max(est.std_error, 1.0 / SAMPLES)
        assert abs(est.timing_yield - oracle.true_yield(target)) <= tolerance
        assert est.n_samples == SAMPLES
        assert est.estimator == name
        assert est.target_delay == target

    @pytest.mark.parametrize("name", ALL)
    def test_estimate_shape_is_sane(self, oracle, name):
        target = oracle.target_at(0.95)
        est = oracle.run(name, target, SAMPLES, seed=SEED)
        assert 0.0 <= est.timing_yield <= 1.0
        assert est.std_error >= 0.0
        assert est.n_effective > 0.0
        lo, hi = est.confidence_interval()
        assert 0.0 <= lo <= est.timing_yield <= hi <= 1.0


class TestVarianceReduction:
    @pytest.mark.parametrize("name", SMART)
    @pytest.mark.parametrize("eta", [0.95, 0.99])
    def test_stderr_beats_plain_at_matched_n(self, oracle, name, eta):
        target = oracle.target_at(eta)
        plain = oracle.run("plain", target, SAMPLES, seed=SEED)
        smart = oracle.run(name, target, SAMPLES, seed=SEED)
        # Committed-seed check with slack: the smart estimator must not
        # report a *larger* error than the binomial baseline.
        assert smart.std_error <= plain.std_error * 1.05
        assert smart.n_effective >= plain.n_effective * 0.95

    def test_plain_n_effective_is_the_sample_count(self, oracle):
        est = oracle.run("plain", oracle.target_at(0.95), SAMPLES, seed=SEED)
        assert est.n_effective == float(SAMPLES)


class TestCoverage:
    @pytest.mark.parametrize("name", ALL)
    @pytest.mark.parametrize("eta", [0.95, 0.99])
    def test_nominal_95_ci_covers_truth(self, oracle, name, eta):
        target = oracle.target_at(eta)
        truth = oracle.true_yield(target)
        covered = 0
        for rep in range(COVERAGE_REPLICATES):
            est = oracle.run(name, target, 2048, seed=1000 + rep)
            lo, hi = est.confidence_interval(z=1.96)
            covered += lo <= truth <= hi
        assert covered / COVERAGE_REPLICATES >= COVERAGE_FLOOR


class TestDeterminism:
    @requires_multicore
    @pytest.mark.parametrize("name", ALL)
    def test_bitwise_identical_across_jobs(self, oracle, name):
        target = oracle.target_at(0.95)
        # shard_size forces a multi-shard plan so n_jobs > 1 actually
        # splits the work; YieldEstimate is all scalars, so dataclass
        # equality is bitwise equality.
        runs = [
            oracle.run(name, target, SAMPLES, seed=SEED, n_jobs=jobs,
                       shard_size=256)
            for jobs in (1, 2, 4)
        ]
        assert runs[0] == runs[1] == runs[2]

    @pytest.mark.parametrize("name", ALL)
    def test_rerun_invariance(self, oracle, name):
        target = oracle.target_at(0.95)
        first = oracle.run(name, target, SAMPLES, seed=SEED)
        second = oracle.run(name, target, SAMPLES, seed=SEED)
        assert first == second

    @pytest.mark.parametrize("name", ALL)
    def test_seed_changes_the_answer(self, oracle, name):
        target = oracle.target_at(0.95)
        a = oracle.run(name, target, SAMPLES, seed=SEED)
        b = oracle.run(name, target, SAMPLES, seed=SEED + 1)
        assert a.timing_yield != b.timing_yield


class TestTimingDriver:
    """The real-circuit driver honors the same contracts as the oracle."""

    def test_plain_driver_matches_historical_yield(self, c432, varmodel_c432):
        from repro.timing import run_ssta

        target = run_ssta(c432, varmodel_c432).circuit_delay.percentile(0.95)
        legacy = mc_timing_yield(
            c432, varmodel_c432, target, n_samples=2048, seed=SEED
        )
        est = estimate_timing_yield(
            c432, varmodel_c432, target, n_samples=2048, seed=SEED,
            estimator="plain",
        )
        assert est.timing_yield == legacy.timing_yield
        assert est.n_samples == legacy.n_samples

    @requires_multicore
    @pytest.mark.parametrize("name", ALL)
    def test_driver_bitwise_identical_across_jobs(self, c17, lib, spec, name):
        from repro.circuit.placement import build_variation_model
        from repro.timing import run_ssta

        varmodel = build_variation_model(c17, spec)
        target = run_ssta(c17, varmodel).circuit_delay.percentile(0.9)
        runs = [
            estimate_timing_yield(
                c17, varmodel, target, n_samples=1024, seed=SEED,
                n_jobs=jobs, estimator=name, shard_size=128,
            )
            for jobs in (1, 2, 4)
        ]
        assert runs[0] == runs[1] == runs[2]


class TestEstimatorErrors:
    def test_unknown_estimator_name(self):
        with pytest.raises(EstimatorError, match="unknown estimator"):
            get_estimator("antithetic")

    def test_finalize_rejects_zero_states(self, oracle):
        est = get_estimator("plain")
        ctx = EstimatorContext(
            varmodel=oracle.varmodel, kernel=oracle.kernel,
            target_delay=1.0, n_samples=0,
        )
        with pytest.raises(EstimatorError, match="zero shard states"):
            est.finalize([], ctx)

    def test_isle_rejects_degenerate_mixture(self):
        with pytest.raises(EstimatorError, match="mixture weight"):
            IsleEstimator(lam=1.0)
        with pytest.raises(EstimatorError, match="mixture weight"):
            IsleEstimator(lam=0.0)

    def test_moments_hungry_estimator_without_moments(self, oracle):
        ctx = EstimatorContext(
            varmodel=oracle.varmodel, kernel=oracle.kernel,
            target_delay=1.0, n_samples=64,
        )
        for name in ("isle", "cv"):
            with pytest.raises(EstimatorError, match="moments"):
                get_estimator(name).make_shard_task(ctx)
