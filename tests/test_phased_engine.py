"""Phased engine behaviour (Vth -> sizing -> Vth)."""

import pytest

from repro.analysis import prepare
from repro.core import OptimizerConfig, optimize_statistical
from repro.tech import VthClass


def test_phasing_beats_or_matches_single_family(spec):
    # The combined phased run must be at least as good as vth-only (it
    # contains that run as its first phase).
    setup_both = prepare("c432")
    config = OptimizerConfig()
    both = optimize_statistical(
        setup_both.circuit, setup_both.spec, setup_both.varmodel, config=config
    )
    setup_vth = prepare("c432")
    vth_only = optimize_statistical(
        setup_vth.circuit, setup_vth.spec, setup_vth.varmodel,
        target_delay=both.target_delay,
        config=OptimizerConfig(enable_sizing=False),
    )
    assert both.after.hc_leakage <= vth_only.after.hc_leakage * 1.02


def test_phases_apply_both_move_families():
    setup = prepare("c432")
    result = optimize_statistical(
        setup.circuit, setup.spec, setup.varmodel, config=OptimizerConfig()
    )
    sizes = {g.size for g in setup.circuit.gates()}
    vths = {g.vth for g in setup.circuit.gates()}
    # After a full run the circuit shows evidence of both families: some
    # gates swapped to high Vth and some downsized relative to the
    # initial (min-delay) sizing.
    assert VthClass.HIGH in vths
    initial_sizes = set(result.initial_assignment.sizes)
    assert min(sizes) <= min(initial_sizes)
    assert result.moves_applied > 0


def test_single_family_config_runs_one_phase():
    setup = prepare("c17")
    result = optimize_statistical(
        setup.circuit, setup.spec, setup.varmodel,
        config=OptimizerConfig(enable_sizing=False),
    )
    # No sizing moves possible from the grid bottom: every applied move is
    # a vth swap, and sizes are untouched.
    assert all(
        a == b
        for a, b in zip(
            result.initial_assignment.sizes, result.final_assignment.sizes
        )
    )


def test_pass_indices_strictly_increasing():
    setup = prepare("c432")
    result = optimize_statistical(
        setup.circuit, setup.spec, setup.varmodel, config=OptimizerConfig()
    )
    indices = [p.pass_index for p in result.passes]
    assert indices == sorted(indices)
    assert len(set(indices)) == len(indices)
