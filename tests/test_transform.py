"""Wide-gate decomposition into library cells, with functional checks."""

import itertools

import pytest

from repro.circuit import Circuit, add_logic_gate
from repro.errors import NetlistError


def evaluate(circuit, input_values):
    """Simulate the circuit; returns {net: bool}."""
    values = dict(input_values)
    for name in circuit.topological_order():
        gate = circuit.gate(name)
        cell = circuit.cell_of(gate)
        values[name] = cell.evaluate([values[f] for f in gate.fanins])
    return values


REFERENCE = {
    "AND": all,
    "OR": any,
    "NAND": lambda bits: not all(bits),
    "NOR": lambda bits: not any(bits),
    "XOR": lambda bits: sum(bits) % 2 == 1,
    "XNOR": lambda bits: sum(bits) % 2 == 0,
}


@pytest.mark.parametrize("kind", sorted(REFERENCE))
@pytest.mark.parametrize("width", [2, 3, 4, 5, 6, 8])
def test_wide_gates_functionally_correct(lib, kind, width):
    c = Circuit(f"{kind}{width}", lib)
    inputs = [f"i{k}" for k in range(width)]
    for net in inputs:
        c.add_input(net)
    add_logic_gate(c, "out", kind, inputs)
    c.add_output("out")
    c.freeze()
    ref = REFERENCE[kind]
    for bits in itertools.product((False, True), repeat=width):
        values = evaluate(c, dict(zip(inputs, bits)))
        assert values["out"] == ref(bits), (kind, width, bits)


def test_narrow_gates_map_directly(lib):
    c = Circuit("t", lib)
    for net in ("a", "b"):
        c.add_input(net)
    add_logic_gate(c, "n", "NAND", ["a", "b"])
    add_logic_gate(c, "x", "XOR", ["a", "b"])
    add_logic_gate(c, "inv", "NOT", ["a"])
    add_logic_gate(c, "buf", "BUF", ["a"])
    c.add_output("x")
    assert c.gate("n").cell_name == "NAND2"
    assert c.gate("x").cell_name == "XOR2"
    assert c.gate("inv").cell_name == "INV"
    assert c.gate("buf").cell_name == "BUF"


def test_root_gate_gets_requested_name(lib):
    c = Circuit("t", lib)
    inputs = [f"i{k}" for k in range(7)]
    for net in inputs:
        c.add_input(net)
    add_logic_gate(c, "wide", "NAND", inputs)
    c.add_output("wide")
    c.freeze()
    assert c.has_net("wide")
    # Intermediate nets use the reserved __t suffix.
    temps = [g.name for g in c.gates() if g.name != "wide"]
    assert temps and all("__t" in t for t in temps)


def test_single_input_wide_gate_degenerates(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    add_logic_gate(c, "x", "AND", ["a"])
    add_logic_gate(c, "y", "NOR", ["a"])
    assert c.gate("x").cell_name == "BUF"
    assert c.gate("y").cell_name == "INV"


def test_not_arity_checked(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_input("b")
    with pytest.raises(NetlistError):
        add_logic_gate(c, "x", "NOT", ["a", "b"])


def test_unsupported_kind_rejected(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    with pytest.raises(NetlistError, match="unsupported logic kind"):
        add_logic_gate(c, "x", "MUX", ["a"])


def test_empty_fanin_rejected(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    with pytest.raises(NetlistError):
        add_logic_gate(c, "x", "AND", [])


def test_buff_alias_accepted(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    add_logic_gate(c, "x", "BUFF", ["a"])
    assert c.gate("x").cell_name == "BUF"


def test_decomposition_depth_logarithmic(lib):
    # A 32-input AND should decompose into a tree, not a chain.
    c = Circuit("t", lib)
    inputs = [f"i{k}" for k in range(32)]
    for net in inputs:
        c.add_input(net)
    add_logic_gate(c, "out", "AND", inputs)
    c.add_output("out")
    c.freeze()
    assert c.depth <= 6  # ceil(log3(32)) + root
