"""Physical constants and the derived helper functions."""

import pytest

from repro.errors import TechnologyError
from repro.tech import constants


def test_thermal_voltage_room_temperature():
    # kT/q at 298.15 K is ~25.69 mV — the subthreshold-slope scale.
    vt = constants.thermal_voltage()
    assert vt == pytest.approx(0.025693, rel=1e-3)


def test_thermal_voltage_scales_linearly():
    assert constants.thermal_voltage(600.0) == pytest.approx(
        2.0 * constants.thermal_voltage(300.0)
    )


def test_thermal_voltage_rejects_nonpositive_temperature():
    with pytest.raises(TechnologyError):
        constants.thermal_voltage(0.0)
    with pytest.raises(TechnologyError):
        constants.thermal_voltage(-10.0)


def test_oxide_capacitance_parallel_plate():
    # 1.6 nm SiO2: Cox = eps0 * 3.9 / tox ~ 21.6 mF/m^2.
    cox = constants.oxide_capacitance_per_area(1.6e-9)
    assert cox == pytest.approx(0.0216, rel=0.01)


def test_oxide_capacitance_inverse_in_thickness():
    thin = constants.oxide_capacitance_per_area(1.0e-9)
    thick = constants.oxide_capacitance_per_area(2.0e-9)
    assert thin == pytest.approx(2.0 * thick)


def test_oxide_capacitance_rejects_nonpositive_thickness():
    with pytest.raises(TechnologyError):
        constants.oxide_capacitance_per_area(0.0)
