"""The shared analysis substrate: module index, symbols, call graph, lattice."""

import textwrap

import pytest

from repro.errors import LintError
from repro.lint import LintContext, run_lint
from repro.lint.analysis import (
    CONFLICT,
    DIMENSIONLESS,
    UNKNOWN,
    CallGraph,
    ModuleIndex,
    PackageSymbols,
    Unit,
    join,
    meet,
    mixable,
    unit_from_name,
)


def write_package(root, files):
    """Write a {relpath: source} package under ``root`` and return it."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


@pytest.fixture
def pkg(tmp_path):
    """A three-module fixture package with a known call structure."""
    root = tmp_path / "pkg"
    return write_package(root, {
        "__init__.py": "",
        "alpha.py": """
            from .beta import middle

            def top():
                return middle() + 1

            TOP_LEVEL = top()
        """,
        "beta.py": """
            from . import gamma

            def middle():
                return gamma.leaf()

            def unrelated(seed):
                return seed
        """,
        "gamma.py": """
            def leaf():
                return 42

            class Thing:
                def method(self):
                    return self.helper()

                def helper(self):
                    return leaf()
        """,
    })


# -- ModuleIndex --------------------------------------------------------------


class TestModuleIndex:
    def test_loads_and_names_modules(self, pkg):
        index = ModuleIndex.load(pkg)
        names = [info.name for info in index]
        assert names == ["pkg", "pkg.alpha", "pkg.beta", "pkg.gamma"]
        assert index.get("pkg.beta").rel.endswith("beta.py")

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(LintError):
            ModuleIndex.load(tmp_path / "nope")

    def test_syntax_error_raises(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        with pytest.raises(LintError):
            ModuleIndex.load(tmp_path)

    def test_select_by_file_and_directory(self, pkg):
        index = ModuleIndex.load(pkg)
        only = index.select([str(pkg / "beta.py")])
        assert [info.name for info in only] == ["pkg.beta"]
        all_of_dir = index.select([str(pkg)])
        assert len(all_of_dir) == len(index)
        assert index.select([str(pkg / "nothere.py")]) == ()

    def test_context_caches_one_index(self, pkg):
        ctx = LintContext(source_root=pkg)
        assert ctx.module_index() is ctx.module_index()

    def test_context_without_root_raises(self):
        with pytest.raises(LintError):
            LintContext().module_index()

    def test_one_parse_per_file_across_all_passes(self, pkg, monkeypatch):
        """All source-tree passes share the cached ASTs (one parse/file)."""
        import ast as ast_module

        import repro.lint.analysis.modules as modules_module

        calls = []
        real_parse = ast_module.parse

        def counting_parse(source, *args, **kwargs):
            calls.append(kwargs.get("filename") or (args[0] if args else None))
            return real_parse(source, *args, **kwargs)

        monkeypatch.setattr(modules_module.ast, "parse", counting_parse)
        report = run_lint(LintContext(source_root=pkg))
        assert report.passes == (
            "codebase", "units", "rng", "artifacts", "concurrency", "perf",
        )
        assert len(calls) == 4  # one per .py file, despite six passes


# -- symbols + call graph -----------------------------------------------------


class TestCallGraph:
    def test_edges_through_import_styles(self, pkg):
        graph = CallGraph.of(ModuleIndex.load(pkg))
        # from-import of a function
        assert "pkg.beta.middle" in graph.callees("pkg.alpha.top")
        # module-attribute call
        assert "pkg.gamma.leaf" in graph.callees("pkg.beta.middle")
        # self-method resolution
        assert "pkg.gamma.Thing.helper" in graph.callees("pkg.gamma.Thing.method")
        assert "pkg.gamma.leaf" in graph.callees("pkg.gamma.Thing.helper")

    def test_module_node_owns_top_level_calls(self, pkg):
        graph = CallGraph.of(ModuleIndex.load(pkg))
        assert "pkg.alpha.top" in graph.callees("pkg.alpha.<module>")

    def test_reverse_edges(self, pkg):
        graph = CallGraph.of(ModuleIndex.load(pkg))
        assert "pkg.beta.middle" in graph.callers("pkg.gamma.leaf")

    def test_find_path_two_hops(self, pkg):
        graph = CallGraph.of(ModuleIndex.load(pkg))
        path = graph.find_path("pkg.alpha.top", "pkg.gamma.leaf")
        assert path == ("pkg.alpha.top", "pkg.beta.middle", "pkg.gamma.leaf")
        assert graph.find_path("pkg.gamma.leaf", "pkg.alpha.top") is None

    def test_reachability(self, pkg):
        graph = CallGraph.of(ModuleIndex.load(pkg))
        reached = graph.reachable_from("pkg.alpha.top")
        assert {"pkg.beta.middle", "pkg.gamma.leaf"} <= reached
        assert "pkg.beta.unrelated" not in reached

    def test_function_params_exposed(self, pkg):
        symbols = PackageSymbols(ModuleIndex.load(pkg))
        fn = symbols.functions["pkg.beta.unrelated"]
        assert fn.params == ("seed",)
        assert fn.has_param("seed", "rng")
        assert not symbols.functions["pkg.gamma.leaf"].has_param("seed")

    def test_resolve_name_through_alias(self, tmp_path):
        root = write_package(tmp_path / "p", {
            "__init__.py": "",
            "m.py": """
                import numpy as np

                def f():
                    return np.random.default_rng()
            """,
        })
        symbols = PackageSymbols(ModuleIndex.load(root))
        info = symbols.index.get("p.m")
        import ast
        call = ast.walk(info.tree)
        names = [
            symbols.resolve_name(info, node.func)
            for node in call if isinstance(node, ast.Call)
        ]
        assert "numpy.random.default_rng" in names


class TestCallGraphEdgeCases:
    """Decorators, lambdas, functools.partial, and re-export chasing."""

    @pytest.fixture
    def edgy(self, tmp_path):
        return write_package(tmp_path / "edgy", {
            "__init__.py": "from .work import job\n",
            "reg.py": """
                def trace(fn):
                    return fn

                def check(name):
                    def wrap(fn):
                        return fn
                    return wrap
            """,
            "work.py": """
                import functools

                from .reg import check, trace

                def job():
                    return 1

                @trace
                def traced():
                    return 2

                @check("units")
                def checked():
                    return 3

                class Widget:
                    @trace
                    def method(self):
                        return 4

                def binds():
                    return functools.partial(job, 0)

                def anon():
                    return (lambda: job)()
            """,
            "use.py": """
                from edgy import job

                def caller():
                    return job()
            """,
        })

    def test_bare_decorator_edges_to_module_node(self, edgy):
        graph = CallGraph.of(ModuleIndex.load(edgy))
        module_node = "edgy.work.<module>"
        assert "edgy.reg.trace" in graph.callees(module_node)
        # the decorated function body does NOT call the decorator
        assert "edgy.reg.trace" not in graph.callees("edgy.work.traced")

    def test_call_decorator_edges_to_factory(self, edgy):
        graph = CallGraph.of(ModuleIndex.load(edgy))
        assert "edgy.reg.check" in graph.callees("edgy.work.<module>")

    def test_method_decorator_attributed_to_module(self, edgy):
        graph = CallGraph.of(ModuleIndex.load(edgy))
        # @trace on Widget.method runs when the class body executes
        assert "edgy.work.<module>" in graph.callers("edgy.reg.trace")

    def test_partial_binding_site_is_a_caller(self, edgy):
        graph = CallGraph.of(ModuleIndex.load(edgy))
        assert "edgy.work.job" in graph.callees("edgy.work.binds")

    def test_lambda_call_contributes_no_edge(self, edgy):
        # under-approximation: a lambda call is unresolvable, never wrong
        graph = CallGraph.of(ModuleIndex.load(edgy))
        assert "edgy.work.job" not in graph.callees("edgy.work.anon")

    def test_canonical_chases_package_reexport(self, edgy):
        symbols = PackageSymbols(ModuleIndex.load(edgy))
        assert symbols.canonical("edgy.job") == "edgy.work.job"
        graph = CallGraph.build(symbols)
        # `from edgy import job` resolves through the package __init__
        assert "edgy.work.job" in graph.callees("edgy.use.caller")


# -- unit lattice -------------------------------------------------------------


class TestUnitLattice:
    def test_join_idempotent_and_commutative(self):
        ps = Unit("time", "ps")
        si = Unit("time")
        assert join(ps, ps) == ps
        assert join(ps, si) == join(si, ps) == UNKNOWN

    def test_join_absorbs_conflict(self):
        ps = Unit("time", "ps")
        assert join(CONFLICT, ps) == ps
        assert join(UNKNOWN, ps) == UNKNOWN

    def test_meet_identity_and_clash(self):
        ps = Unit("time", "ps")
        nw = Unit("power", "nW")
        assert meet(ps, ps) == ps
        assert meet(UNKNOWN, ps) == ps
        assert meet(ps, UNKNOWN) == ps
        assert meet(ps, nw) == CONFLICT

    def test_mixable_gives_benefit_of_doubt(self):
        ps = Unit("time", "ps")
        assert mixable(ps, UNKNOWN)
        assert mixable(ps, DIMENSIONLESS)
        assert mixable(ps, ps)
        assert not mixable(ps, Unit("time"))
        assert not mixable(ps, Unit("power", "nW"))

    def test_unit_from_name_suffixes(self):
        assert unit_from_name("delay_ps") == Unit("time", "ps")
        assert unit_from_name("leakage_nw") == Unit("power", "nW")
        assert unit_from_name("cap_pf") == Unit("capacitance", "pF")
        assert unit_from_name("delay") is None
        assert unit_from_name("snapshot") is None

    def test_str_forms(self):
        assert str(Unit("time", "ps")) == "time[ps]"
        assert str(UNKNOWN) == "unknown"
        assert str(DIMENSIONLESS) == "dimensionless"
