"""Campaign specs (TOML/JSON/bundled) and their DAG expansion."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    bundled_specs,
    complete_task_keys,
    expand,
    load_spec,
    resolve_spec,
    spec_from_dict,
)
from repro.errors import CampaignError


def small_spec(**overrides):
    defaults = dict(name="t", benchmarks=("c17",), mc_samples=0)
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestValidation:
    def test_unknown_benchmark(self):
        with pytest.raises(CampaignError):
            small_spec(benchmarks=("nope",))

    def test_duplicate_benchmark(self):
        with pytest.raises(CampaignError):
            small_spec(benchmarks=("c17", "c17"))

    def test_unknown_flow(self):
        with pytest.raises(CampaignError):
            small_spec(flows=("quantum",))

    def test_margin_below_one(self):
        with pytest.raises(CampaignError):
            small_spec(margins=(0.9,))

    def test_yield_target_outside_unit_interval(self):
        with pytest.raises(CampaignError):
            small_spec(yield_targets=(1.0,))

    def test_negative_retries(self):
        with pytest.raises(CampaignError):
            small_spec(retries=-1)

    def test_with_overrides_preserves_name(self):
        spec = small_spec().with_overrides(benchmarks=["c432"], mc_samples=10)
        assert spec.name == "t"
        assert spec.benchmarks == ("c432",)
        assert spec.mc_samples == 10


class TestLoading:
    def test_flat_dict(self):
        spec = spec_from_dict({"name": "x", "benchmarks": ["c17"]})
        assert spec.benchmarks == ("c17",)

    def test_sectioned_dict_with_config(self):
        spec = spec_from_dict({
            "campaign": {"name": "x", "benchmarks": ["c17"]},
            "config": {"yield_target": 0.9},
        })
        assert spec.config.yield_target == 0.9

    def test_unknown_field_rejected(self):
        with pytest.raises(CampaignError):
            spec_from_dict({"name": "x", "benchmarks": ["c17"], "turbo": True})

    def test_unknown_config_field_rejected(self):
        with pytest.raises(CampaignError):
            spec_from_dict({
                "campaign": {"name": "x", "benchmarks": ["c17"]},
                "config": {"warp_factor": 9},
            })

    def test_json_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"benchmarks": ["c17"], "mc_samples": 5}))
        spec = load_spec(path)
        assert spec.name == "sweep"  # defaults to the file stem
        assert spec.mc_samples == 5

    def test_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "sweep.toml"
        path.write_text(
            '[campaign]\nname = "toml-sweep"\nbenchmarks = ["c17"]\n'
            "margins = [1.2]\n\n[config]\nyield_target = 0.9\n"
        )
        spec = load_spec(path)
        assert spec.name == "toml-sweep"
        assert spec.margins == (1.2,)
        assert spec.config.yield_target == 0.9

    def test_missing_file(self, tmp_path):
        with pytest.raises(CampaignError):
            load_spec(tmp_path / "absent.json")

    def test_unknown_suffix(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("benchmarks: [c17]")
        with pytest.raises(CampaignError):
            load_spec(path)

    def test_bundled_specs_resolve(self):
        bundled = bundled_specs()
        assert {"paper-sweep", "paper-sweep-smoke"} <= set(bundled)
        assert resolve_spec("paper-sweep-smoke").mc_samples > 0

    def test_unknown_ref_rejected(self):
        with pytest.raises(CampaignError):
            resolve_spec("no-such-campaign")


class TestExpansion:
    def test_both_flows_with_mc(self):
        tasks = expand(small_spec(mc_samples=10))
        ids = [t.task_id for t in tasks]
        assert ids == [
            "analyze:c17",
            "opt:c17:m1.1:det",
            "mc:c17:m1.1:det",
            "opt:c17:m1.1:y0.95:stat",
            "mc:c17:m1.1:y0.95:stat",
            "report",
        ]

    def test_mc_disabled_drops_validation_tasks(self):
        ids = [t.task_id for t in expand(small_spec())]
        assert not any(i.startswith("mc:") for i in ids)

    def test_statistical_depends_on_deterministic_target(self):
        tasks = {t.task_id: t for t in expand(small_spec())}
        stat = tasks["opt:c17:m1.1:y0.95:stat"]
        assert "opt:c17:m1.1:det" in stat.deps

    def test_statistical_only_flow_has_no_det_dep(self):
        tasks = {t.task_id: t for t in expand(
            small_spec(flows=("statistical",))
        )}
        stat = tasks["opt:c17:m1.1:y0.95:stat"]
        assert stat.deps == ("analyze:c17",)

    def test_report_is_best_effort_over_all_terminals(self):
        tasks = expand(small_spec(mc_samples=10))
        report = tasks[-1]
        assert report.best_effort
        assert set(report.deps) == {
            t.task_id for t in tasks[:-1] if t.kind in ("optimize", "mc")
        }

    def test_topological_order(self):
        seen = set()
        for task in expand(small_spec(benchmarks=("c17", "c432"), mc_samples=5)):
            assert all(dep in seen for dep in task.deps), task.task_id
            seen.add(task.task_id)


class TestKeys:
    def test_keys_deterministic(self):
        assert complete_task_keys(small_spec()) == complete_task_keys(small_spec())

    def test_mc_seed_invalidates_only_mc_and_report(self):
        base = complete_task_keys(small_spec(mc_samples=10))
        reseeded = complete_task_keys(small_spec(mc_samples=10, mc_seed=1))
        changed = {t for t in base if base[t] != reseeded[t]}
        assert changed == {
            "mc:c17:m1.1:det", "mc:c17:m1.1:y0.95:stat", "report"
        }

    def test_config_change_invalidates_opt_subtree_not_analyze(self):
        from repro.core import OptimizerConfig

        base = complete_task_keys(small_spec())
        tweaked = complete_task_keys(
            small_spec(config=OptimizerConfig(max_passes=7))
        )
        assert base["analyze:c17"] == tweaked["analyze:c17"]
        assert base["opt:c17:m1.1:det"] != tweaked["opt:c17:m1.1:det"]

    def test_spec_fingerprint_reflects_everything(self):
        assert small_spec().fingerprint() != small_spec(mc_seed=1).fingerprint()
