"""Experiment plumbing: prepare/comparison/sweeps/tables."""

import pytest

from repro.analysis import (
    format_table,
    microwatts,
    percent,
    picoseconds,
    prepare,
    run_comparison,
    yield_matched_deterministic,
)
from repro.analysis.sweeps import tradeoff_curve, yield_target_sweep
from repro.core import OptimizerConfig
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def c17_setup():
    return prepare("c17")


class TestPrepare:
    def test_builds_consistent_setup(self, c17_setup):
        assert c17_setup.circuit.name == "c17"
        assert c17_setup.varmodel.n_gates == c17_setup.circuit.n_gates

    def test_sigma_scale(self):
        base = prepare("c17")
        scaled = prepare("c17", sigma_scale=2.0)
        assert scaled.spec.sigma_l_total == pytest.approx(
            2 * base.spec.sigma_l_total
        )

    def test_uncorrelated_option(self):
        setup = prepare("c17", correlated=False)
        assert setup.spec.sigma_l_inter == 0.0
        assert setup.varmodel.n_globals == 2

    def test_other_technology(self):
        setup = prepare("c17", tech_name="ptm70")
        assert setup.library.tech.name == "ptm70"


class TestComparison:
    def test_row_fields(self, c17_setup):
        row = run_comparison(c17_setup)
        assert row.circuit == "c17"
        assert row.n_gates == 6
        assert row.deterministic.target_delay == row.statistical.target_delay
        assert -1.0 < row.extra_mean_savings < 1.0
        assert -1.0 < row.extra_hc_savings < 1.0


class TestYieldMatchedBaseline:
    def test_matches_target_yield(self):
        setup = prepare("c432")
        config = OptimizerConfig()
        comparison = run_comparison(setup, config=config)
        matched = yield_matched_deterministic(
            setup, comparison.target_delay, config=config
        )
        # Measured yield of the matched deterministic solution must meet
        # the statistical flow's target.
        from repro.timing import run_ssta

        setup.circuit.apply_assignment(matched.final_assignment)
        ssta = run_ssta(setup.circuit, setup.varmodel)
        assert ssta.timing_yield(comparison.target_delay) >= config.yield_target - 0.02
        # And the statistical flow should still be no worse on the
        # objective (usually strictly better).
        assert (
            comparison.statistical.after.hc_leakage
            <= matched.after.hc_leakage * 1.05
        )


class TestSweeps:
    def test_tradeoff_curve_shape(self, c17_setup):
        rows = tradeoff_curve(c17_setup, margins=(1.05, 1.3))
        assert len(rows) == 2
        # Looser constraint cannot increase optimized leakage.
        assert rows[1]["stat_mean_leakage"] <= rows[0]["stat_mean_leakage"] * 1.01
        for r in rows:
            assert r["stat_mean_leakage"] <= r["det_mean_leakage"] * 1.01

    def test_yield_sweep_monotone(self, c17_setup):
        rows = yield_target_sweep(c17_setup, (0.85, 0.99))
        assert rows[0]["mean_leakage"] <= rows[1]["mean_leakage"] * 1.01
        for r in rows:
            assert r["achieved_yield"] >= r["yield_target"] - 1e-6


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.0], ["beta", 22.5]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(AnalysisError):
            format_table(["a", "b"], [["only-one"]])

    def test_formatters(self):
        assert percent(0.1234) == "12.3%"
        assert microwatts(1.5e-6) == "1.500"
        assert picoseconds(40e-12) == "40.0"


class TestReporting:
    def test_report_round_trip(self, tmp_path, c17_setup):
        from repro.analysis import render_report, save_report
        from repro.core import OptimizerConfig, optimize_deterministic, optimize_statistical

        setup = c17_setup
        config = OptimizerConfig()
        det = optimize_deterministic(
            setup.circuit, setup.spec, setup.varmodel, config=config
        )
        stat = optimize_statistical(
            setup.circuit, setup.spec, setup.varmodel,
            target_delay=det.target_delay, config=config,
        )
        text = render_report([det, stat])
        assert text.startswith("# Leakage optimization report — c17")
        assert "| deterministic |" in text
        assert "| statistical |" in text
        assert "before vs after" in text
        out = tmp_path / "report.md"
        save_report([det, stat], out, title="demo")
        assert out.read_text().startswith("# demo")

    def test_report_rejects_mixed_circuits(self):
        from repro.analysis import prepare, render_report
        from repro.core import optimize_statistical

        a = prepare("c17")
        ra = optimize_statistical(a.circuit, a.spec, a.varmodel)
        b = prepare("c432")
        rb = optimize_statistical(b.circuit, b.spec, b.varmodel)
        from repro.errors import ReproError
        import pytest as _pytest

        with _pytest.raises(ReproError, match="multiple circuits"):
            render_report([ra, rb])

    def test_report_rejects_empty(self):
        from repro.analysis import render_report
        from repro.errors import ReproError
        import pytest as _pytest

        with _pytest.raises(ReproError, match="no results"):
            render_report([])
