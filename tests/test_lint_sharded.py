"""The sharded self-lint runner: bitwise determinism for any --jobs N."""

import textwrap
import warnings
from pathlib import Path

import pytest

from repro.lint import (
    LintContext,
    LintOptions,
    render_json,
    run_lint,
    run_lint_sharded,
)
from repro.lint.sharded import _run_pool, shard_files
from repro.parallel.runner import ParallelExecutionWarning


@pytest.fixture
def pkg(tmp_path):
    """A package dirty enough that every source pass has findings."""
    root = tmp_path / "pkg"
    files = {
        "__init__.py": "",
        "a.py": """
            CACHE = {}

            def put(key, value):
                CACHE[key] = value
        """,
        "b.py": """
            import numpy as np

            def draw():
                return np.random.default_rng().normal()
        """,
        "c.py": """
            from .b import draw

            def render():
                return draw()
        """,
        "d.py": """
            def delay_ps(x):
                return x
        """,
    }
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


class TestShardPlan:
    def test_round_robin_is_worker_count_independent(self, pkg):
        one = shard_files(pkg, 1)
        three = shard_files(pkg, 3)
        assert sorted(f for s in one for f in s) == \
            sorted(f for s in three for f in s)
        # shard i of N is a pure function of the sorted file list
        assert three == shard_files(pkg, 3)

    def test_more_shards_than_files_drops_empties(self, pkg):
        shards = shard_files(pkg, 100)
        assert all(shards)
        assert len(shards) == len(list(pkg.rglob("*.py")))


class TestBitwiseEquality:
    def test_sharded_equals_serial_for_any_job_count(self, pkg):
        options = LintOptions()
        serial = run_lint(LintContext(source_root=pkg))
        for jobs in (1, 2, 5):
            sharded = run_lint_sharded(pkg, options, n_jobs=jobs)
            assert sharded.findings == serial.findings, jobs
            assert sharded.passes == serial.passes
            assert render_json(sharded) == render_json(serial)

    def test_pass_selection_forwarded(self, pkg):
        options = LintOptions()
        sharded = run_lint_sharded(
            pkg, options, passes=("concurrency",), n_jobs=2
        )
        assert sharded.passes == ("concurrency",)
        assert all(f.code.startswith("RPR8") for f in sharded.findings)
        serial = run_lint(
            LintContext(source_root=pkg), passes=("concurrency",)
        )
        assert sharded.findings == serial.findings

    def test_paths_narrowing_matches_serial(self, pkg):
        options = LintOptions(paths=(str(pkg / "a.py"), str(pkg / "b.py")))
        serial = run_lint(LintContext(source_root=pkg, options=options))
        sharded = run_lint_sharded(pkg, options, n_jobs=2)
        assert sharded.findings == serial.findings
        assert all("pkg/c.py" not in (f.location or "")
                   for f in sharded.findings)


class _Exploding:
    """Module-level so the pool can pickle it into a worker."""

    def __call__(self, shard):
        raise RuntimeError("boom")


class TestFailurePolicy:
    def test_pool_failure_falls_back_to_serial(self, pkg, monkeypatch):
        import repro.lint.sharded as sharded_module

        def broken_pool(task, shards, workers):
            raise OSError("no forks today")

        monkeypatch.setattr(sharded_module, "_run_pool", broken_pool)
        serial = run_lint(LintContext(source_root=pkg))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = run_lint_sharded(pkg, LintOptions(), n_jobs=4)
        assert report.findings == serial.findings
        assert any(
            isinstance(w.message, ParallelExecutionWarning) for w in caught
        )

    def test_worker_exception_propagates_to_fallback(self):
        with pytest.raises(RuntimeError):
            _run_pool(_Exploding(), [("x",), ("y",)], 2)
