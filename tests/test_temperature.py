"""Leakage-vs-temperature sweep."""

import pytest

from repro.errors import PowerError
from repro.power import leakage_temperature_sweep
from repro.tech import VthClass


ROOM = 298.15


def test_leakage_rises_steeply_with_temperature(c17):
    rows = leakage_temperature_sweep(c17, [ROOM, ROOM + 50, ROOM + 85])
    powers = [r["leakage_power"] for r in rows]
    assert powers[0] < powers[1] < powers[2]
    # ~85C of heating multiplies subthreshold leakage several-fold.
    assert rows[-1]["relative"] > 3.0


def test_relative_normalized_to_first_point(c17):
    rows = leakage_temperature_sweep(c17, [ROOM + 85, ROOM])
    assert rows[0]["relative"] == pytest.approx(1.0)
    assert rows[1]["relative"] < 1.0


def test_celsius_conversion(c17):
    rows = leakage_temperature_sweep(c17, [ROOM])
    assert rows[0]["temperature_c"] == pytest.approx(25.0)


def test_implementation_state_respected(c17):
    c17.set_uniform(vth=VthClass.HIGH)
    high = leakage_temperature_sweep(c17, [ROOM])[0]["leakage_power"]
    c17.set_uniform(vth=VthClass.LOW)
    low = leakage_temperature_sweep(c17, [ROOM])[0]["leakage_power"]
    assert high < low / 10


def test_original_circuit_untouched(c17):
    before = c17.library.tech.temperature
    leakage_temperature_sweep(c17, [ROOM + 100])
    assert c17.library.tech.temperature == before


def test_input_validation(c17):
    with pytest.raises(PowerError):
        leakage_temperature_sweep(c17, [])
    with pytest.raises(PowerError):
        leakage_temperature_sweep(c17, [-10.0])
