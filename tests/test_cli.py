"""Command-line interface."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "c432" in out
    assert "ptm100" in out


def test_info_benchmark(capsys):
    assert main(["info", "c17"]) == 0
    out = capsys.readouterr().out
    assert "gates" in out
    assert "NAND2" in out


def test_info_bench_file(tmp_path, capsys):
    from repro.circuit import C17_BENCH

    path = tmp_path / "mini.bench"
    path.write_text(C17_BENCH)
    assert main(["info", str(path)]) == 0
    assert "mini" in capsys.readouterr().out


def test_info_missing_file_fails(capsys):
    assert main(["info", "does/not/exist.bench"]) == 1
    assert "error:" in capsys.readouterr().err


def test_analyze_command(capsys):
    assert main(["analyze", "c17"]) == 0
    out = capsys.readouterr().out
    assert "SSTA mean delay" in out
    assert "mean leakage" in out


def test_analyze_other_tech(capsys):
    assert main(["analyze", "c17", "--tech", "ptm70"]) == 0
    assert "ptm70" in capsys.readouterr().out


def test_optimize_statistical_only(capsys):
    assert main(["optimize", "c17", "--flow", "statistical"]) == 0
    out = capsys.readouterr().out
    assert "statistical" in out
    assert "extra statistical savings" not in out  # single flow: no delta


def test_optimize_both_flows(capsys):
    assert main(
        ["optimize", "c17", "--flow", "both", "--margin", "1.2",
         "--yield", "0.9"]
    ) == 0
    out = capsys.readouterr().out
    assert "deterministic" in out
    assert "extra statistical savings" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_benchmark_fails(capsys):
    assert main(["info", "c99999"]) == 1
    assert "error:" in capsys.readouterr().err


def test_export_verilog(tmp_path, capsys):
    out = tmp_path / "c17.v"
    assert main(["export", "c17", str(out)]) == 0
    assert out.exists()
    assert "module" in out.read_text()


def test_export_bench_round_trips(tmp_path, capsys):
    out = tmp_path / "c17.bench"
    assert main(["export", "c17", str(out)]) == 0
    assert main(["info", str(out)]) == 0
    assert "gates" in capsys.readouterr().out


def test_export_library(tmp_path, capsys):
    out = tmp_path / "cells.lib"
    assert main(["export", str(out)]) == 0
    assert out.read_text().startswith("library (")


def test_export_unknown_format_fails(tmp_path, capsys):
    assert main(["export", "c17", str(tmp_path / "c17.spice")]) == 1
    assert "unknown export format" in capsys.readouterr().err


def test_export_library_requires_lib_suffix(tmp_path, capsys):
    assert main(["export", str(tmp_path / "cells.v")]) == 1
    assert "requires a .lib" in capsys.readouterr().err
