"""Command-line interface."""

from pathlib import Path

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "c432" in out
    assert "ptm100" in out


def test_info_benchmark(capsys):
    assert main(["info", "c17"]) == 0
    out = capsys.readouterr().out
    assert "gates" in out
    assert "NAND2" in out


def test_info_bench_file(tmp_path, capsys):
    from repro.circuit import C17_BENCH

    path = tmp_path / "mini.bench"
    path.write_text(C17_BENCH)
    assert main(["info", str(path)]) == 0
    assert "mini" in capsys.readouterr().out


def test_info_missing_file_fails(capsys):
    assert main(["info", "does/not/exist.bench"]) == 1
    assert "error:" in capsys.readouterr().err


def test_analyze_command(capsys):
    assert main(["analyze", "c17"]) == 0
    out = capsys.readouterr().out
    assert "SSTA mean delay" in out
    assert "mean leakage" in out


def test_analyze_other_tech(capsys):
    assert main(["analyze", "c17", "--tech", "ptm70"]) == 0
    assert "ptm70" in capsys.readouterr().out


def test_optimize_statistical_only(capsys):
    assert main(["optimize", "c17", "--flow", "statistical"]) == 0
    out = capsys.readouterr().out
    assert "statistical" in out
    assert "extra statistical savings" not in out  # single flow: no delta


def test_optimize_both_flows(capsys):
    assert main(
        ["optimize", "c17", "--flow", "both", "--margin", "1.2",
         "--yield", "0.9"]
    ) == 0
    out = capsys.readouterr().out
    assert "deterministic" in out
    assert "extra statistical savings" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_benchmark_fails(capsys):
    assert main(["info", "c99999"]) == 1
    assert "error:" in capsys.readouterr().err


def test_export_verilog(tmp_path, capsys):
    out = tmp_path / "c17.v"
    assert main(["export", "c17", str(out)]) == 0
    assert out.exists()
    assert "module" in out.read_text()


def test_export_bench_round_trips(tmp_path, capsys):
    out = tmp_path / "c17.bench"
    assert main(["export", "c17", str(out)]) == 0
    assert main(["info", str(out)]) == 0
    assert "gates" in capsys.readouterr().out


def test_export_library(tmp_path, capsys):
    out = tmp_path / "cells.lib"
    assert main(["export", str(out)]) == 0
    assert out.read_text().startswith("library (")


def test_export_unknown_format_fails(tmp_path, capsys):
    assert main(["export", "c17", str(tmp_path / "c17.spice")]) == 1
    assert "unknown export format" in capsys.readouterr().err


def test_export_library_requires_lib_suffix(tmp_path, capsys):
    assert main(["export", str(tmp_path / "cells.v")]) == 1
    assert "requires a .lib" in capsys.readouterr().err


# -- engine selection ---------------------------------------------------------


def test_info_provenance_lists_engines_and_estimators(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "engines: clark, histogram, mc" in out
    assert "estimators: plain" in out


def test_mc_default_engine_keeps_analytic_column(capsys):
    assert main(["mc", "c17", "--samples", "64"]) == 0
    out = capsys.readouterr().out
    assert "analytic" in out
    assert "engine" not in out.splitlines()[0]


def test_mc_histogram_engine(capsys):
    assert main(
        ["mc", "c17", "--samples", "64", "--engine", "histogram",
         "--bins", "64"]
    ) == 0
    out = capsys.readouterr().out
    assert "engine histogram" in out
    assert "histogram" in out.splitlines()[1]  # reference column header


def test_mc_mc_engine(capsys):
    assert main(["mc", "c17", "--samples", "64", "--engine", "mc"]) == 0
    assert "engine mc" in capsys.readouterr().out


def test_mc_bins_requires_histogram_engine(capsys):
    assert main(
        ["mc", "c17", "--samples", "64", "--engine", "mc", "--bins", "32"]
    ) == 1
    assert "--bins only applies" in capsys.readouterr().err
    assert main(["mc", "c17", "--samples", "64", "--bins", "32"]) == 1
    assert "--bins only applies" in capsys.readouterr().err


def test_mc_invalid_bins_rejected(capsys):
    assert main(
        ["mc", "c17", "--samples", "64", "--engine", "histogram",
         "--bins", "1"]
    ) == 1
    assert "bins must be in" in capsys.readouterr().err


def test_mc_unknown_engine_rejected_by_parser():
    import pytest

    with pytest.raises(SystemExit):
        main(["mc", "c17", "--engine", "spice"])


def test_optimize_accepts_engine_flag(capsys):
    assert main(
        ["optimize", "c17", "--flow", "statistical", "--engine",
         "histogram"]
    ) == 0
    assert "statistical" in capsys.readouterr().out


# -- lint subcommand ----------------------------------------------------------


def test_lint_needs_a_subject(capsys):
    assert main(["lint"]) == 1
    assert "circuit, --self, or both" in capsys.readouterr().err


def test_lint_benchmark_text(capsys):
    assert main(["lint", "c17"]) == 0
    out = capsys.readouterr().out
    assert "lint:" in out
    assert "passes: circuit, technology, config" in out


def test_lint_all_benchmarks_zero_errors(capsys):
    from repro.circuit import benchmark_names

    for name in benchmark_names():
        assert main(["lint", name]) == 0, name
        assert "0 error(s)" in capsys.readouterr().out


def test_lint_json_round_trips(capsys):
    import json

    assert main(["lint", "c432", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["passes"] == ["circuit", "technology", "config"]
    assert payload["summary"]["errors"] == 0
    for finding in payload["findings"]:
        assert finding["code"].startswith("RPR")
        assert finding["severity"] in ("info", "warning", "error")


def test_lint_self_exits_clean(capsys):
    baseline = str(Path(__file__).parent.parent / "lint-baseline.json")
    assert main(["lint", "--self", "--strict", "--baseline", baseline]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_lint_detects_bad_circuit(tmp_path, capsys):
    bench = tmp_path / "bad.bench"
    bench.write_text(
        "INPUT(a)\nINPUT(unused)\nOUTPUT(y)\ny = NAND(a, a)\n"
    )
    assert main(["lint", str(bench)]) == 0  # warnings alone pass
    out = capsys.readouterr().out
    assert "RPR101" in out
    assert "RPR103" in out
    assert main(["lint", str(bench), "--strict"]) == 1


def test_lint_ignore_flag(tmp_path, capsys):
    bench = tmp_path / "bad.bench"
    bench.write_text(
        "INPUT(a)\nINPUT(unused)\nOUTPUT(y)\ny = NAND(a, a)\n"
    )
    # RPR303 also fires here (min_chunk >= the 1-gate circuit), so both
    # codes must be ignored for a strict pass.
    assert main(
        ["lint", str(bench), "--strict",
         "--ignore", "RPR101", "--ignore", "RPR303"]
    ) == 0
    assert "RPR101" not in capsys.readouterr().out


def test_lint_unknown_ignore_code_fails(capsys):
    assert main(["lint", "c17", "--ignore", "RPR999"]) == 1
    assert "unknown rule" in capsys.readouterr().err


def test_lint_infeasible_target_is_an_error(capsys):
    assert main(["lint", "c17", "--target-delay", "1.0"]) == 1
    assert "RPR307" in capsys.readouterr().out


def test_info_includes_lint_summary(capsys):
    assert main(["info", "c17"]) == 0
    out = capsys.readouterr().out
    assert "finding(s)" in out and "repro lint c17" in out


def test_info_clean_circuit_says_clean(tmp_path, capsys):
    bench = tmp_path / "pair.bench"
    bench.write_text("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")
    assert main(["info", str(bench)]) == 0
    assert "lint: clean" in capsys.readouterr().out
