"""Statistical slack (canonical required times)."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.tech import VthClass
from repro.timing import (
    TimingView,
    run_sta,
    run_ssta,
    statistical_slacks,
)


class TestCanonicalMinAndMinus:
    def test_minimum_dominant(self):
        from repro.timing import Canonical

        a = Canonical(1.0, np.array([0.1]), 0.1)
        b = Canonical(100.0, np.array([0.1]), 0.1)
        m = a.minimum(b)
        assert m.mean == pytest.approx(1.0)

    def test_minimum_below_means(self):
        from repro.timing import Canonical

        a = Canonical(1.0, np.array([0.5]), 0.2)
        b = Canonical(1.0, np.array([0.0]), 0.5)
        m = a.minimum(b)
        assert m.mean < 1.0

    def test_minus_moments(self):
        from repro.timing import Canonical

        a = Canonical(3.0, np.array([0.4]), 0.3)
        b = Canonical(1.0, np.array([0.4]), 0.2)
        d = a.minus(b)
        assert d.mean == pytest.approx(2.0)
        # Global parts cancel exactly; independent parts add.
        assert np.allclose(d.sens, [0.0])
        assert d.indep == pytest.approx(np.hypot(0.3, 0.2))


class TestStatisticalSlacks:
    def test_mean_slacks_track_deterministic(self, c432, varmodel_c432):
        sta = run_sta(c432)
        target = 1.2 * sta.circuit_delay
        det = run_sta(c432, target_delay=target)
        stat = statistical_slacks(c432, varmodel_c432, target)
        # Mean statistical slack correlates strongly with nominal slack
        # (the max/min shifts introduce only small offsets).
        rho = np.corrcoef(det.slacks, stat.mean_slacks())[0, 1]
        assert rho > 0.95

    def test_relaxed_target_all_gates_pass(self, c432, varmodel_c432):
        sta = run_sta(c432)
        stat = statistical_slacks(c432, varmodel_c432, 1.5 * sta.circuit_delay)
        assert stat.slack_yields().min() > 0.99

    def test_tight_target_flags_critical_gates(self, c432, varmodel_c432):
        ssta = run_ssta(c432, varmodel_c432)
        # At the SSTA mean the circuit misses half the time: critical-path
        # gates must show low slack yield.
        stat = statistical_slacks(
            c432, varmodel_c432, ssta.circuit_delay.mean, ssta=ssta
        )
        critical = stat.statistically_critical(threshold=0.8)
        assert critical.size > 0
        sta = run_sta(c432)
        path_idx = {c432.gate_index(n) for n in sta.critical_path}
        assert path_idx & set(int(i) for i in critical)

    def test_slack_yield_against_circuit_yield(self, c432, varmodel_c432):
        # The minimum per-gate slack yield approximates the circuit yield
        # (they coincide when one path dominates).
        ssta = run_ssta(c432, varmodel_c432)
        target = ssta.circuit_delay.percentile(0.9)
        stat = statistical_slacks(c432, varmodel_c432, target, ssta=ssta)
        min_gate_yield = stat.slack_yields().min()
        assert min_gate_yield == pytest.approx(0.9, abs=0.07)

    def test_high_vth_erodes_slack(self, c432, varmodel_c432):
        sta = run_sta(c432)
        target = 1.2 * sta.circuit_delay
        before = statistical_slacks(c432, varmodel_c432, target).mean_slacks()
        c432.set_uniform(vth=VthClass.HIGH)
        after = statistical_slacks(c432, varmodel_c432, target).mean_slacks()
        assert after.mean() < before.mean()

    def test_invalid_target_rejected(self, c432, varmodel_c432):
        with pytest.raises(TimingError):
            statistical_slacks(c432, varmodel_c432, 0.0)

    def test_reuses_given_ssta(self, c432, varmodel_c432):
        view = TimingView(c432)
        ssta = run_ssta(view, varmodel_c432)
        target = 1.1 * ssta.circuit_delay.mean
        a = statistical_slacks(view, varmodel_c432, target, ssta=ssta)
        b = statistical_slacks(view, varmodel_c432, target)
        assert np.allclose(a.mean_slacks(), b.mean_slacks())


class TestGraphEdgeCases:
    """Degenerate topologies: empty graph, one gate, tied endpoints."""

    @staticmethod
    def _varmodel(circuit, spec):
        from repro.circuit.placement import build_variation_model

        return build_variation_model(circuit, spec)

    def test_empty_graph_rejected_at_freeze(self, lib):
        # A gateless circuit cannot reach timing analysis: the netlist
        # layer rejects it with its typed error before any view exists.
        from repro.circuit.netlist import Circuit
        from repro.errors import NetlistError

        empty = Circuit("empty", lib)
        empty.add_input("a")
        with pytest.raises(NetlistError, match="no primary outputs"):
            empty.freeze()

    def test_single_gate_path(self, lib, spec):
        from repro.circuit.netlist import Circuit

        c = Circuit("one", lib)
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g", "NAND2", ["a", "b"])
        c.add_output("g")
        c.freeze()
        varmodel = self._varmodel(c, spec)
        ssta = run_ssta(c, varmodel)
        # The only gate is the whole critical path.
        assert ssta.criticality[0] == pytest.approx(1.0)
        assert ssta.circuit_delay.mean == ssta.arrivals[0].mean
        slacks = statistical_slacks(
            c, varmodel, 1.5 * ssta.circuit_delay.mean, ssta=ssta
        )
        assert slacks.mean_slacks().shape == (1,)
        assert slacks.slack_yields()[0] > 0.999

    def test_tied_critical_endpoints(self, lib, spec):
        # Two identical gates on the same inputs: perfectly tied
        # endpoints must split criticality evenly and see equal slacks.
        from repro.circuit.netlist import Circuit

        c = Circuit("tied", lib)
        c.add_input("a")
        c.add_input("b")
        c.add_gate("g1", "NAND2", ["a", "b"])
        c.add_gate("g2", "NAND2", ["a", "b"])
        c.add_output("g1")
        c.add_output("g2")
        c.freeze()
        varmodel = self._varmodel(c, spec)
        ssta = run_ssta(c, varmodel)
        assert ssta.criticality[0] == pytest.approx(0.5, abs=1e-9)
        assert ssta.criticality[1] == pytest.approx(0.5, abs=1e-9)
        slacks = statistical_slacks(
            c, varmodel, 1.2 * ssta.circuit_delay.mean, ssta=ssta
        )
        a, b = slacks.mean_slacks()
        assert a == pytest.approx(b, rel=1e-12)
