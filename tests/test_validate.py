"""Netlist lint diagnostics."""

from repro.circuit import Circuit, lint_circuit


def test_clean_circuit_no_findings(c17):
    assert lint_circuit(c17) == []


def test_unused_input_flagged(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_input("unused")
    c.add_gate("g", "INV", ["a"])
    c.add_output("g")
    findings = lint_circuit(c)
    assert any(f.code == "unused-input" and "unused" in f.message for f in findings)


def test_dangling_gate_flagged(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_gate("g", "INV", ["a"])
    c.add_gate("orphan", "INV", ["a"])
    c.add_output("g")
    findings = lint_circuit(c)
    assert any(f.code == "dangling-gate" for f in findings)


def test_duplicate_pin_flagged(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_gate("g", "NAND2", ["a", "a"])
    c.add_output("g")
    findings = lint_circuit(c)
    assert any(f.code == "duplicate-pin" for f in findings)


def test_high_fanout_flagged(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    for i in range(5):
        c.add_gate(f"g{i}", "INV", ["a"])
        c.add_output(f"g{i}")
    findings = lint_circuit(c, max_fanout=3)
    assert any(f.code == "high-fanout" for f in findings)


def test_output_gate_not_dangling(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_gate("g", "INV", ["a"])
    c.add_output("g")
    assert not any(f.code == "dangling-gate" for f in lint_circuit(c))
