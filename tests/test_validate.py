"""Circuit lint diagnostics (the RPR1xx pass and its compatibility facade).

Every circuit rule code is exercised at least once on a purpose-built
corrupted netlist, plus the clean-circuit baselines the optimizer flows
rely on.
"""

import pytest

from repro.circuit import Circuit, lint_circuit
from repro.errors import DiagnosticSeverity
from repro.lint import LintContext, LintOptions, run_lint


def _codes(findings):
    return {f.rule for f in findings}


def test_clean_circuit_no_errors_or_warnings(c17):
    findings = lint_circuit(c17)
    assert all(f.severity is DiagnosticSeverity.INFO for f in findings)


def test_c17_reconvergence_is_reported_as_info(c17):
    # c17's nets 3 and 11 genuinely fork and re-merge within two levels;
    # the engine reports that (info), it is not an error.
    findings = lint_circuit(c17)
    assert "RPR105" in _codes(findings)
    assert all(f.rule == "RPR105" for f in findings)


def test_rca8_clean(rca8):
    findings = lint_circuit(rca8)
    assert not any(
        f.severity is not DiagnosticSeverity.INFO for f in findings
    )


def test_unused_input_flagged(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_input("unused")
    c.add_gate("g", "INV", ["a"])
    c.add_output("g")
    findings = lint_circuit(c)
    hits = [f for f in findings if f.code == "unused-input"]
    assert hits and "unused" in hits[0].message
    assert hits[0].rule == "RPR101"
    assert hits[0].severity is DiagnosticSeverity.WARNING


def test_dangling_gate_flagged(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_gate("g", "INV", ["a"])
    c.add_gate("orphan", "INV", ["a"])
    c.add_output("g")
    findings = lint_circuit(c)
    hits = [f for f in findings if f.code == "dangling-gate"]
    assert hits and hits[0].rule == "RPR102"


def test_duplicate_pin_flagged(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_gate("g", "NAND2", ["a", "a"])
    c.add_output("g")
    findings = lint_circuit(c)
    hits = [f for f in findings if f.code == "duplicate-pin"]
    assert hits and hits[0].rule == "RPR103"
    assert hits[0].severity is DiagnosticSeverity.INFO


def test_high_fanout_flagged(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    for i in range(5):
        c.add_gate(f"g{i}", "INV", ["a"])
        c.add_output(f"g{i}")
    findings = lint_circuit(c, max_fanout=3)
    hits = [f for f in findings if f.code == "high-fanout"]
    assert hits and hits[0].rule == "RPR104"


def test_fanout_below_threshold_not_flagged(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    for i in range(3):
        c.add_gate(f"g{i}", "INV", ["a"])
        c.add_output(f"g{i}")
    assert not any(f.code == "high-fanout" for f in lint_circuit(c, max_fanout=3))


def test_output_gate_not_dangling(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_gate("g", "INV", ["a"])
    c.add_output("g")
    assert not any(f.code == "dangling-gate" for f in lint_circuit(c))


def _reconvergent_pair(lib):
    """a forks into two inverters that re-merge in one NAND."""
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_gate("u", "INV", ["a"])
    c.add_gate("v", "INV", ["a"])
    c.add_gate("m", "NAND2", ["u", "v"])
    c.add_output("m")
    return c


def test_shallow_reconvergence_flagged(lib):
    findings = lint_circuit(_reconvergent_pair(lib))
    hits = [f for f in findings if f.code == "shallow-reconvergence"]
    assert hits and hits[0].rule == "RPR105"
    assert "'a'" in hits[0].message and "'m'" in hits[0].message


def test_reconvergence_beyond_depth_not_flagged(lib):
    # Push one branch five levels deep; with depth 2 the merge is unseen.
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_gate("u", "INV", ["a"])
    prev = "a"
    for i in range(5):
        c.add_gate(f"d{i}", "BUF", [prev])
        prev = f"d{i}"
    c.add_gate("m", "NAND2", ["u", prev])
    c.add_output("m")
    report = run_lint(
        LintContext(circuit=c, options=LintOptions(reconvergence_depth=2)),
        passes=("circuit",),
    )
    assert not any(f.code == "RPR105" for f in report.findings)


def test_constant_cone_xor_self(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_gate("z", "XOR2", ["a", "a"])
    c.add_output("z")
    findings = lint_circuit(c)
    hits = [f for f in findings if f.code == "constant-cone"]
    assert hits and hits[0].rule == "RPR106"
    assert "outputs 0" in hits[0].message


def test_constant_cone_xnor_self_is_one(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_gate("z", "XNOR2", ["a", "a"])
    c.add_output("z")
    hits = [f for f in lint_circuit(c) if f.code == "constant-cone"]
    assert hits and "outputs 1" in hits[0].message


def test_constant_propagates_through_controlling_pin(lib):
    # XOR(a, a) = 0 is a controlling value for AND: the AND is constant
    # too even though its other pin is live.
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_input("b")
    c.add_gate("z", "XOR2", ["a", "a"])
    c.add_gate("g", "AND2", ["z", "b"])
    c.add_output("g")
    constant_gates = {
        f.message.split("'")[1]
        for f in lint_circuit(c)
        if f.code == "constant-cone"
    }
    assert {"z", "g"} <= constant_gates


def test_live_xor_not_flagged(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_input("b")
    c.add_gate("z", "XOR2", ["a", "b"])
    c.add_output("z")
    assert not any(f.code == "constant-cone" for f in lint_circuit(c))


def test_diagnostic_severity_is_enum(lib):
    c = Circuit("t", lib)
    c.add_input("a")
    c.add_input("unused")
    c.add_gate("g", "INV", ["a"])
    c.add_output("g")
    (hit,) = [f for f in lint_circuit(c) if f.code == "unused-input"]
    assert hit.severity is DiagnosticSeverity.WARNING
    assert hit.severity.value == "warning"  # the historical string


def test_all_bundled_benchmarks_error_free(lib):
    from repro.circuit import benchmark_names, make_benchmark

    for name in benchmark_names():
        findings = lint_circuit(make_benchmark(name, lib))
        errors = [
            f for f in findings if f.severity is DiagnosticSeverity.ERROR
        ]
        assert errors == [], f"{name}: {errors}"
