"""VariationSpec: sigma decomposition and derived specs."""

import math

import pytest

from repro.errors import VariationError
from repro.variation import VariationSpec, default_variation


@pytest.fixture
def vspec():
    return VariationSpec(sigma_l_total=5e-9, sigma_vth_total=0.018)


def test_variance_decomposition_sums(vspec):
    total = (
        vspec.sigma_l_inter**2
        + vspec.sigma_l_spatial**2
        + vspec.sigma_l_random**2
    )
    assert total == pytest.approx(vspec.sigma_l_total**2)
    total_v = (
        vspec.sigma_vth_inter**2
        + vspec.sigma_vth_spatial**2
        + vspec.sigma_vth_random**2
    )
    assert total_v == pytest.approx(vspec.sigma_vth_total**2)


def test_default_fractions(vspec):
    assert vspec.sigma_l_inter == pytest.approx(5e-9 * math.sqrt(0.5))
    assert vspec.sigma_vth_spatial == 0.0


def test_scaled_preserves_structure(vspec):
    double = vspec.scaled(2.0)
    assert double.sigma_l_total == pytest.approx(1e-8)
    assert double.inter_fraction_l == vspec.inter_fraction_l
    assert double.sigma_l_inter == pytest.approx(2 * vspec.sigma_l_inter)


def test_scaled_rejects_negative(vspec):
    with pytest.raises(VariationError):
        vspec.scaled(-1.0)


def test_without_correlation_preserves_total(vspec):
    flat = vspec.without_correlation()
    assert flat.sigma_l_total == vspec.sigma_l_total
    assert flat.sigma_l_inter == 0.0
    assert flat.sigma_l_spatial == 0.0
    assert flat.sigma_l_random == pytest.approx(vspec.sigma_l_total)


def test_fully_correlated(vspec):
    solid = vspec.fully_correlated()
    assert solid.sigma_l_inter == pytest.approx(vspec.sigma_l_total)
    assert solid.sigma_l_random == 0.0


def test_fraction_bounds_enforced():
    with pytest.raises(VariationError):
        VariationSpec(5e-9, 0.018, inter_fraction_l=0.8, spatial_fraction_l=0.3)
    with pytest.raises(VariationError):
        VariationSpec(5e-9, 0.018, inter_fraction_l=-0.1)
    with pytest.raises(VariationError):
        VariationSpec(-1e-9, 0.018)
    with pytest.raises(VariationError):
        VariationSpec(5e-9, 0.018, correlation_length=0.0)
    with pytest.raises(VariationError):
        VariationSpec(5e-9, 0.018, grid_dim=0)


def test_default_variation_scales_with_node():
    spec100 = default_variation(100e-9)
    spec70 = default_variation(70e-9)
    assert spec100.sigma_l_total == pytest.approx(5e-9)
    assert spec70.sigma_l_total == pytest.approx(3.5e-9)
    assert spec100.sigma_vth_total == spec70.sigma_vth_total
