"""End-to-end optimizer integration tests (the paper's core claims)."""

import pytest

from repro.circuit import build_variation_model, make_benchmark
from repro.core import OptimizerConfig, optimize_deterministic, optimize_statistical
from repro.tech import VthClass, slow_corner
from repro.timing import run_ssta, run_sta


@pytest.fixture(scope="module")
def comparison(lib_module, spec_module):
    """One shared det-vs-stat run on c432 (module-scoped: ~2 s)."""
    circuit = make_benchmark("c432", lib_module)
    varmodel = build_variation_model(circuit, spec_module)
    config = OptimizerConfig()
    det = optimize_deterministic(circuit, spec_module, varmodel, config=config)
    det_assignment = circuit.assignment()
    stat = optimize_statistical(
        circuit, spec_module, varmodel, target_delay=det.target_delay, config=config
    )
    return {
        "circuit": circuit,
        "varmodel": varmodel,
        "config": config,
        "det": det,
        "det_assignment": det_assignment,
        "stat": stat,
    }


@pytest.fixture(scope="module")
def lib_module():
    from repro.tech import Library, get_technology

    return Library(get_technology("ptm100"))


@pytest.fixture(scope="module")
def spec_module(lib_module):
    from repro.variation import default_variation

    return default_variation(lib_module.tech.lnom)


class TestDeterministicFlow:
    def test_reduces_leakage(self, comparison):
        det = comparison["det"]
        assert det.after.mean_leakage < 0.5 * det.before.mean_leakage
        assert det.leakage_reduction > 0.5

    def test_meets_corner_constraint(self, comparison):
        det = comparison["det"]
        circuit = comparison["circuit"]
        circuit.apply_assignment(comparison["det_assignment"])
        corner = slow_corner(
            comparison["varmodel"].spec, comparison["config"].corner_sigma
        )
        sta = run_sta(circuit, corner=corner)
        assert sta.circuit_delay <= det.target_delay * (1 + 1e-9)

    def test_corner_solution_overdelivers_yield(self, comparison):
        # The corner's pessimism shows up as ~100% measured yield.
        det = comparison["det"]
        assert det.after.timing_yield > 0.999

    def test_moves_and_passes_recorded(self, comparison):
        det = comparison["det"]
        assert det.moves_applied > 0
        assert len(det.passes) > 0
        assert det.runtime_seconds > 0

    def test_assignments_snapshot_states(self, comparison):
        det = comparison["det"]
        assert len(det.initial_assignment) == comparison["circuit"].n_gates
        assert det.initial_assignment.vths != det.final_assignment.vths


class TestStatisticalFlow:
    def test_meets_yield_constraint(self, comparison):
        stat = comparison["stat"]
        config = comparison["config"]
        assert stat.after.timing_yield >= config.yield_target - 1e-6

    def test_yield_verified_by_fresh_ssta(self, comparison):
        circuit = comparison["circuit"]
        stat = comparison["stat"]
        circuit.apply_assignment(stat.final_assignment)
        ssta = run_ssta(circuit, comparison["varmodel"])
        assert ssta.timing_yield(stat.target_delay) >= 0.949

    def test_beats_deterministic_on_every_statistic(self, comparison):
        det, stat = comparison["det"], comparison["stat"]
        assert stat.after.mean_leakage < det.after.mean_leakage
        assert stat.after.p95_leakage < det.after.p95_leakage
        assert stat.after.hc_leakage < det.after.hc_leakage

    def test_savings_in_expected_band(self, comparison):
        # Same-Tmax protocol: the statistical flow should save a
        # substantial extra fraction (paper band and above, given the
        # 3-sigma corner baseline).
        det, stat = comparison["det"], comparison["stat"]
        extra = 1.0 - stat.after.mean_leakage / det.after.mean_leakage
        assert 0.10 < extra < 0.95

    def test_uses_more_high_vth(self, comparison):
        det, stat = comparison["det"], comparison["stat"]
        assert stat.after.high_vth_fraction >= det.after.high_vth_fraction


class TestConfigurationVariants:
    def test_vth_only_ablation(self, lib_module, spec_module):
        circuit = make_benchmark("c17", lib_module)
        varmodel = build_variation_model(circuit, spec_module)
        config = OptimizerConfig(enable_sizing=False)
        result = optimize_statistical(circuit, spec_module, varmodel, config=config)
        # Only vth changed; sizes still from the initial sizing pass.
        assert result.after.mean_leakage <= result.before.mean_leakage

    def test_tighter_yield_costs_leakage(self, lib_module, spec_module):
        circuit = make_benchmark("c432", lib_module)
        varmodel = build_variation_model(circuit, spec_module)
        relaxed = optimize_statistical(
            circuit, spec_module, varmodel,
            config=OptimizerConfig(yield_target=0.85),
        )
        tmax = relaxed.target_delay
        circuit2 = make_benchmark("c432", lib_module)
        varmodel2 = build_variation_model(circuit2, spec_module)
        strict = optimize_statistical(
            circuit2, spec_module, varmodel2, target_delay=tmax,
            config=OptimizerConfig(yield_target=0.99),
        )
        assert strict.after.mean_leakage >= relaxed.after.mean_leakage
        assert strict.after.timing_yield >= 0.99 - 1e-6

    def test_explicit_target_respected(self, lib_module, spec_module):
        circuit = make_benchmark("c17", lib_module)
        varmodel = build_variation_model(circuit, spec_module)
        det = optimize_deterministic(
            circuit, spec_module, varmodel, target_delay=1e-9
        )
        assert det.target_delay == 1e-9

    def test_summary_readable(self, comparison):
        text = comparison["stat"].summary()
        assert "statistical" in text
        assert "uW" in text
