"""Signal-probability and switching-activity propagation."""

import itertools

import pytest

from repro.circuit import Circuit
from repro.errors import PowerError
from repro.power import (
    gate_input_probabilities,
    signal_probabilities,
    switching_activities,
)


def exhaustive_probability(circuit, net, input_probs):
    """Exact P(net=1) by enumerating all input vectors."""
    total = 0.0
    inputs = circuit.inputs
    for bits in itertools.product((False, True), repeat=len(inputs)):
        w = 1.0
        for name, bit in zip(inputs, bits):
            p = input_probs.get(name, 0.5)
            w *= p if bit else 1 - p
        values = dict(zip(inputs, bits))
        for gname in circuit.topological_order():
            gate = circuit.gate(gname)
            cell = circuit.cell_of(gate)
            values[gname] = cell.evaluate([values[f] for f in gate.fanins])
        if values[net]:
            total += w
    return total


class TestSignalProbabilities:
    def test_inputs_default_half(self, c17):
        probs = signal_probabilities(c17)
        for pi in c17.inputs:
            assert probs[pi] == 0.5

    def test_exact_on_tree_circuit(self, lib):
        # A fanout-free tree: the independence assumption is exact.
        c = Circuit("tree", lib)
        for net in "abcd":
            c.add_input(net)
        c.add_gate("n1", "NAND2", ["a", "b"])
        c.add_gate("n2", "NOR2", ["c", "d"])
        c.add_gate("top", "AND2", ["n1", "n2"])
        c.add_output("top")
        weights = {"a": 0.3, "b": 0.9, "c": 0.2, "d": 0.7}
        probs = signal_probabilities(c, weights)
        for net in ("n1", "n2", "top"):
            assert probs[net] == pytest.approx(
                exhaustive_probability(c, net, weights)
            )

    def test_custom_input_probability(self, c17):
        probs = signal_probabilities(c17, {"1": 0.9})
        assert probs["1"] == 0.9
        assert probs["2"] == 0.5

    def test_unknown_input_rejected(self, c17):
        with pytest.raises(PowerError, match="unknown inputs"):
            signal_probabilities(c17, {"nope": 0.5})

    def test_probability_range_checked(self, c17):
        with pytest.raises(PowerError):
            signal_probabilities(c17, {"1": 1.5})
        with pytest.raises(PowerError):
            signal_probabilities(c17, default_input_prob=-0.1)

    def test_all_nets_covered(self, c432):
        probs = signal_probabilities(c432)
        assert set(probs) == set(c432.inputs) | {g.name for g in c432.gates()}
        assert all(0.0 <= p <= 1.0 for p in probs.values())


class TestGateInputProbabilities:
    def test_tuples_align_with_fanins(self, c17):
        probs = signal_probabilities(c17)
        gp = gate_input_probabilities(c17, probs)
        for gate in c17.gates():
            assert gp[gate.name] == tuple(probs[f] for f in gate.fanins)


class TestSwitchingActivities:
    def test_formula(self, c17):
        probs = signal_probabilities(c17)
        acts = switching_activities(c17, probs)
        for net, p in probs.items():
            assert acts[net] == pytest.approx(2 * p * (1 - p))

    def test_peak_at_half(self, c17):
        acts = switching_activities(c17)
        assert all(a <= 0.5 + 1e-12 for a in acts.values())
        for pi in c17.inputs:
            assert acts[pi] == pytest.approx(0.5)
